// Host-side AmuletOS: event scheduler, system services, app lifecycle and
// fault handling. App *code* runs on the simulated MSP430 (so every cycle of
// isolation overhead is measured); service *semantics* execute here, behind
// the HOSTIO peripheral, standing in for the wearable's sensor/display
// hardware.
#ifndef SRC_OS_OS_H_
#define SRC_OS_OS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/aft/aft.h"
#include "src/common/status.h"
#include "src/mcu/machine.h"
#include "src/mcu/trace.h"
#include "src/os/api.h"
#include "src/os/sensors.h"

namespace amulet {

class EventTracer;

enum class FaultPolicy : uint8_t {
  kLogOnly,     // record and keep delivering events
  kDisableApp,  // record, stop delivering events to the app
  kRestartApp,  // record, reset app globals, re-run on_init
};

struct OsOptions {
  int fram_wait_states = 1;
  // Depth of the per-fault instruction trace (0 disables tracing).
  int trace_depth = 16;
  uint64_t handler_cycle_budget = 20'000'000;  // runaway-handler cut-off
  FaultPolicy fault_policy = FaultPolicy::kRestartApp;
  uint32_t sensor_seed = 20180711;
};

struct FaultRecord {
  int app_index = -1;
  bool from_mpu = false;  // true: MPU violation NMI; false: software check
  uint16_t code = 0;      // software: 1=index 2=memory 3=return addr
  uint16_t addr = 0;      // offending address / index
  uint64_t at_cycles = 0;
  std::string description;
  // Disassembly of the last few instructions before the fault (crash dump).
  std::string recent_trace;
};

struct AppStats {
  uint64_t dispatches = 0;
  uint64_t cycles = 0;
  uint64_t syscalls = 0;
  uint64_t faults = 0;
  uint64_t restarts = 0;
};

struct LogEntry {
  int app_index;
  uint16_t tag;
  int16_t value;
  uint64_t at_ms;
};

class AmuletOs {
 public:
  AmuletOs(Machine* machine, Firmware firmware, OsOptions options);

  // Loads the firmware image, installs vectors and the syscall handler, and
  // delivers on_init to every app.
  Status Boot();

  // Fast boot for fleet cloning: restores `snapshot` (captured from
  // `booted`'s machine after Boot() completed) into this OS's machine and
  // copies `booted`'s host-side state (subscriptions, stats, displays, RNG
  // and sensor state), skipping the image load and every on_init dispatch.
  // Both instances must have been constructed from the same firmware. The
  // clone is indistinguishable from a fresh Boot() on this machine; callers
  // that want a distinct device identity reseed sensors() afterwards.
  Status BootFromSnapshot(const MachineSnapshot& snapshot, const AmuletOs& booted);

  struct DispatchResult {
    uint64_t cycles = 0;
    uint64_t syscalls = 0;
    bool faulted = false;
  };
  // Runs one event handler to completion on the simulated CPU.
  // No-op success (0 cycles) if the app does not define the handler.
  Result<DispatchResult> Deliver(int app_index, EventType type, uint16_t a0 = 0,
                                 uint16_t a1 = 0, uint16_t a2 = 0);

  // Advances simulated wall-clock time, generating timer/sensor events for
  // subscribed apps in timestamp order.
  Status RunFor(uint64_t sim_ms);

  // Injects a button press (delivered to apps subscribed via
  // amulet_button_subscribe).
  Status PressButton(int button_id);

  // State inspection.
  const Firmware& firmware() const { return firmware_; }
  Machine& machine() { return *machine_; }
  SensorSuite& sensors() { return sensors_; }
  uint64_t now_ms() const { return now_ms_; }
  const std::vector<FaultRecord>& faults() const { return faults_; }
  const std::vector<LogEntry>& log() const { return log_; }
  const AppStats& stats(int app_index) const { return stats_[app_index]; }
  int app_count() const { return static_cast<int>(firmware_.apps.size()); }
  bool app_enabled(int app_index) const { return enabled_[app_index]; }
  // Display: per app, position -> value (what amulet_display_digits wrote).
  const std::map<int, int16_t>& display(int app_index) const { return displays_[app_index]; }

  // Renders a small status report (per-app stats + display contents).
  std::string StatusReport() const;

  // Attaches an event tracer to the machine's probe points and to the OS's
  // own (dispatch spans, fault instants, sensor-event instants). Host wiring:
  // excluded from snapshots; survives Boot()/BootFromSnapshot() but must be
  // reattached by the owner after a machine restore it performs itself. Pass
  // nullptr to detach.
  void AttachTracer(EventTracer* tracer);

 private:
  uint16_t HandleSyscall(const SyscallRequest& request);
  Status HandleFault(int app_index, bool from_mpu, uint16_t code, uint16_t addr);
  Status RestartApp(int app_index);
  Status RestartAppInner(int app_index);
  // Reloads an app's globals from the original image (restart semantics).
  void ReloadAppData(int app_index);

  struct TimerState {
    bool active = false;
    uint32_t period_ms = 0;
    uint64_t next_due_ms = 0;
  };
  struct Subscriptions {
    std::map<int, TimerState> timers;  // timer_id -> state
    bool accel = false;
    uint32_t accel_period_ms = 0;
    uint64_t accel_next_ms = 0;
    uint64_t accel_sample_index = 0;
    bool heartrate = false;
    uint64_t hr_next_ms = 0;
    bool button = false;
  };

  Machine* machine_;
  Firmware firmware_;
  OsOptions options_;
  SensorSuite sensors_;
  EventTracer* tracer_ = nullptr;

  int current_app_ = -1;
  uint64_t now_ms_ = 0;
  uint32_t rng_state_ = 0x1234;

  std::vector<Subscriptions> subs_;
  std::vector<AppStats> stats_;
  std::vector<bool> enabled_;
  std::vector<std::map<int, int16_t>> displays_;
  std::vector<FaultRecord> faults_;
  std::vector<LogEntry> log_;
  bool booted_ = false;
  bool in_restart_ = false;
  ExecutionTrace trace_{16};
};

}  // namespace amulet

#endif  // SRC_OS_OS_H_
