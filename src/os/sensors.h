// Deterministic synthetic sensor streams standing in for the Amulet
// wristband's hardware (accelerometer, PPG heart-rate, thermistor, light
// sensor, battery gauge). Everything is a pure function of simulated time
// plus an LCG noise source, so experiments are reproducible run-to-run.
#ifndef SRC_OS_SENSORS_H_
#define SRC_OS_SENSORS_H_

#include <cstdint>

namespace amulet {

// Splittable deterministic noise (numerical recipes LCG).
class NoiseSource {
 public:
  explicit NoiseSource(uint32_t seed) : state_(seed != 0 ? seed : 1) {}

  uint32_t Next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }
  // Uniform in [-amplitude, +amplitude].
  int32_t Jitter(int32_t amplitude) {
    if (amplitude <= 0) {
      return 0;
    }
    return static_cast<int32_t>(Next() % (2 * amplitude + 1)) - amplitude;
  }

 private:
  uint32_t state_;
};

// What the simulated wearer is doing; drives all modalities.
enum class ActivityMode : uint8_t {
  kRest,     // sitting still
  kWalking,  // ~1.8 Hz step cadence
  kRunning,  // ~2.6 Hz cadence, higher amplitude
  kFalling,  // a fall transient (high-g spike then still)
};

struct AccelSample {
  int16_t x_mg = 0;  // milli-g
  int16_t y_mg = 0;
  int16_t z_mg = 0;
};

class SensorSuite {
 public:
  explicit SensorSuite(uint32_t seed = 20180711) : noise_(seed) {}

  void set_mode(ActivityMode mode) { mode_ = mode; }
  ActivityMode mode() const { return mode_; }

  // Restarts the noise source from `seed`, discarding accumulated state.
  // The fleet engine uses this to give each cloned device its own stream.
  void Reseed(uint32_t seed) { noise_ = NoiseSource(seed); }

  // Accelerometer sample at absolute simulated time (milliseconds).
  AccelSample Accel(uint64_t t_ms);
  // Heart rate in bpm (rest ~68, walking ~95, running ~140).
  int HeartRateBpm(uint64_t t_ms);
  // Skin temperature, centi-degrees C.
  int TempCentiC(uint64_t t_ms);
  // Ambient light, lux (diurnal curve).
  int LightLux(uint64_t t_ms);
  // Battery percentage (linear discharge, ~1 week from full).
  int BatteryPercent(uint64_t t_ms);

 private:
  NoiseSource noise_;
  ActivityMode mode_ = ActivityMode::kRest;
};

}  // namespace amulet

#endif  // SRC_OS_SENSORS_H_
