// Per-instruction CPU cycle model, following the MSP430x2xx-family CPU cycle
// tables (TI SLAU144/SLAU367). These counts assume zero-wait memory; the MCU
// layer adds FRAM wait-state penalties per bus access on top.
#ifndef SRC_ISA_CYCLES_H_
#define SRC_ISA_CYCLES_H_

#include <cstdint>

#include "src/isa/instruction.h"

namespace amulet {

// Base cycle count for one instruction. `dst_is_pc` is true when a Format-I
// destination is the PC register (branch-like MOVs cost one extra cycle for
// the pipeline refill with several source modes).
int InstructionCycles(const Instruction& insn);

// Cycles consumed by an interrupt accept sequence (push PC, push SR, fetch
// vector): 6 on the MSP430.
inline constexpr int kInterruptAcceptCycles = 6;

}  // namespace amulet

#endif  // SRC_ISA_CYCLES_H_
