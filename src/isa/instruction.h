// In-memory model of one decoded MSP430 instruction.
//
// The MSP430 ISA has three encoding formats:
//   Format I  (double-operand): MOV, ADD, ADDC, SUBC, SUB, CMP, DADD, BIT,
//                               BIC, BIS, XOR, AND
//   Format II (single-operand): RRC, SWPB, RRA, SXT, PUSH, CALL, RETI
//   Jumps:                      JNZ, JZ, JNC, JC, JN, JGE, JL, JMP
// plus seven addressing modes realized through the As/Ad bits and the two
// constant-generator registers (R2/R3).
#ifndef SRC_ISA_INSTRUCTION_H_
#define SRC_ISA_INSTRUCTION_H_

#include <cstdint>
#include <string>

#include "src/isa/registers.h"

namespace amulet {

enum class Opcode : uint8_t {
  // Format I (value == encoding nibble).
  kMov = 0x4,
  kAdd = 0x5,
  kAddc = 0x6,
  kSubc = 0x7,
  kSub = 0x8,
  kCmp = 0x9,
  kDadd = 0xA,
  kBit = 0xB,
  kBic = 0xC,
  kBis = 0xD,
  kXor = 0xE,
  kAnd = 0xF,
  // Format II (values chosen above the Format-I range).
  kRrc = 0x10,
  kSwpb = 0x11,
  kRra = 0x12,
  kSxt = 0x13,
  kPush = 0x14,
  kCall = 0x15,
  kReti = 0x16,
  // Jumps (value - kJnz == condition code).
  kJnz = 0x20,
  kJz = 0x21,
  kJnc = 0x22,
  kJc = 0x23,
  kJn = 0x24,
  kJge = 0x25,
  kJl = 0x26,
  kJmp = 0x27,
};

constexpr bool IsFormatOne(Opcode op) { return op >= Opcode::kMov && op <= Opcode::kAnd; }
constexpr bool IsFormatTwo(Opcode op) { return op >= Opcode::kRrc && op <= Opcode::kReti; }
constexpr bool IsJump(Opcode op) { return op >= Opcode::kJnz && op <= Opcode::kJmp; }

enum class AddrMode : uint8_t {
  kRegister,         // Rn
  kIndexed,          // x(Rn)
  kSymbolic,         // ADDR  == x(PC); ext holds the PC-relative offset
  kAbsolute,         // &ADDR == x(SR)
  kIndirect,         // @Rn
  kIndirectAutoInc,  // @Rn+
  kImmediate,        // #N    == @PC+; ext holds the literal
  kConst,            // constant generator (#0 #1 #2 #4 #8 #-1); ext holds the value
};

// True when the mode consumes an extension word in the instruction stream.
constexpr bool ModeHasExtWord(AddrMode mode) {
  return mode == AddrMode::kIndexed || mode == AddrMode::kSymbolic ||
         mode == AddrMode::kAbsolute || mode == AddrMode::kImmediate;
}

struct Operand {
  AddrMode mode = AddrMode::kRegister;
  Reg reg = Reg::kPc;
  // kIndexed: signed index; kSymbolic: PC-relative offset; kAbsolute: address;
  // kImmediate / kConst: literal value. Unused otherwise.
  uint16_t ext = 0;

  bool operator==(const Operand&) const = default;
};

// Builders for readable call sites (used heavily by tests and codegen).
Operand RegOp(Reg reg);
Operand IndexedOp(Reg reg, uint16_t index);
Operand SymbolicOp(uint16_t pc_relative_offset);
Operand AbsoluteOp(uint16_t address);
Operand IndirectOp(Reg reg);
Operand IndirectAutoIncOp(Reg reg);
// Picks the constant generator when `value` is one of {0,1,2,4,8,0xFFFF},
// otherwise a real immediate with an extension word.
Operand ImmediateOp(uint16_t value);
// Forces a full immediate even for CG-expressible values (rarely needed).
Operand RawImmediateOp(uint16_t value);

struct Instruction {
  Opcode op = Opcode::kMov;
  bool byte = false;  // B/W bit: true = byte operation
  Operand src;        // Format I only
  Operand dst;        // Format I destination / Format II single operand
  int16_t jump_offset_words = 0;  // Jumps: signed word offset; target = pc + 2 + 2*offset

  // Number of 16-bit words this instruction occupies (1..3).
  int WordCount() const;

  bool operator==(const Instruction&) const = default;
};

std::string_view OpcodeName(Opcode op);

}  // namespace amulet

#endif  // SRC_ISA_INSTRUCTION_H_
