// Binary encoder/decoder for MSP430 instructions.
//
// Encode() produces 1-3 little-endian words; Decode() reverses it, including
// constant-generator recognition (R2/R3 special addressing combinations).
#ifndef SRC_ISA_ENCODING_H_
#define SRC_ISA_ENCODING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/isa/instruction.h"

namespace amulet {

// Encodes `insn` into machine words. Fails on combinations the hardware cannot
// express (e.g. an immediate destination, indexed mode on R3).
Result<std::vector<uint16_t>> Encode(const Instruction& insn);

// Decodes the instruction starting at words[0]; consumes up to three words.
// Fails on reserved/undefined encodings.
Result<Instruction> Decode(std::span<const uint16_t> words);

}  // namespace amulet

#endif  // SRC_ISA_ENCODING_H_
