// MSP430 register file definitions and status-register bit layout.
//
// The MSP430 has sixteen 16-bit registers. R0..R3 are special:
//   R0 = PC (program counter), R1 = SP (stack pointer), R2 = SR / constant
//   generator 1, R3 = constant generator 2.
#ifndef SRC_ISA_REGISTERS_H_
#define SRC_ISA_REGISTERS_H_

#include <cstdint>
#include <string_view>

namespace amulet {

inline constexpr int kNumRegisters = 16;

enum class Reg : uint8_t {
  kPc = 0,
  kSp = 1,
  kSr = 2,
  kCg = 3,
  kR4 = 4,
  kR5 = 5,
  kR6 = 6,
  kR7 = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
};

constexpr uint8_t RegIndex(Reg reg) { return static_cast<uint8_t>(reg); }

constexpr Reg RegFromIndex(uint8_t index) { return static_cast<Reg>(index & 0x0F); }

// Status register (R2) bits.
inline constexpr uint16_t kSrCarry = 1u << 0;     // C
inline constexpr uint16_t kSrZero = 1u << 1;      // Z
inline constexpr uint16_t kSrNegative = 1u << 2;  // N
inline constexpr uint16_t kSrGie = 1u << 3;       // global interrupt enable
inline constexpr uint16_t kSrCpuOff = 1u << 4;    // low-power: CPU halted
inline constexpr uint16_t kSrOscOff = 1u << 5;
inline constexpr uint16_t kSrScg0 = 1u << 6;
inline constexpr uint16_t kSrScg1 = 1u << 7;
inline constexpr uint16_t kSrOverflow = 1u << 8;  // V

// "r12" / "pc" / "sp" / "sr" / "r3".
std::string_view RegName(Reg reg);

}  // namespace amulet

#endif  // SRC_ISA_REGISTERS_H_
