#include "src/isa/disassembler.h"

#include "src/common/strings.h"

namespace amulet {

namespace {

// Address of an operand's extension word, needed to resolve symbolic mode.
std::string OperandText(const Operand& op, uint16_t ext_word_addr) {
  switch (op.mode) {
    case AddrMode::kRegister:
      return std::string(RegName(op.reg));
    case AddrMode::kIndexed:
      return StrFormat("%d(%s)", static_cast<int16_t>(op.ext), std::string(RegName(op.reg)).c_str());
    case AddrMode::kSymbolic: {
      uint16_t target = static_cast<uint16_t>(ext_word_addr + op.ext);
      return HexWord(target);
    }
    case AddrMode::kAbsolute:
      return StrFormat("&%s", HexWord(op.ext).c_str());
    case AddrMode::kIndirect:
      return StrFormat("@%s", std::string(RegName(op.reg)).c_str());
    case AddrMode::kIndirectAutoInc:
      return StrFormat("@%s+", std::string(RegName(op.reg)).c_str());
    case AddrMode::kImmediate:
    case AddrMode::kConst:
      return StrFormat("#%d", static_cast<int16_t>(op.ext));
  }
  return "?";
}

}  // namespace

std::string Disassemble(const Instruction& insn, uint16_t pc) {
  std::string name(OpcodeName(insn.op));
  if (insn.byte) {
    name += ".b";
  }
  if (IsJump(insn.op)) {
    uint16_t target = static_cast<uint16_t>(pc + 2 + 2 * insn.jump_offset_words);
    return StrFormat("%-8s %s", name.c_str(), HexWord(target).c_str());
  }
  if (insn.op == Opcode::kReti) {
    return name;
  }
  if (IsFormatTwo(insn.op)) {
    uint16_t ext_addr = static_cast<uint16_t>(pc + 2);
    return StrFormat("%-8s %s", name.c_str(), OperandText(insn.dst, ext_addr).c_str());
  }
  uint16_t src_ext_addr = static_cast<uint16_t>(pc + 2);
  uint16_t dst_ext_addr =
      static_cast<uint16_t>(pc + 2 + (ModeHasExtWord(insn.src.mode) ? 2 : 0));
  return StrFormat("%-8s %s, %s", name.c_str(), OperandText(insn.src, src_ext_addr).c_str(),
                   OperandText(insn.dst, dst_ext_addr).c_str());
}

}  // namespace amulet
