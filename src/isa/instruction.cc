#include "src/isa/instruction.h"

namespace amulet {

std::string_view RegName(Reg reg) {
  switch (reg) {
    case Reg::kPc:
      return "pc";
    case Reg::kSp:
      return "sp";
    case Reg::kSr:
      return "sr";
    case Reg::kCg:
      return "r3";
    case Reg::kR4:
      return "r4";
    case Reg::kR5:
      return "r5";
    case Reg::kR6:
      return "r6";
    case Reg::kR7:
      return "r7";
    case Reg::kR8:
      return "r8";
    case Reg::kR9:
      return "r9";
    case Reg::kR10:
      return "r10";
    case Reg::kR11:
      return "r11";
    case Reg::kR12:
      return "r12";
    case Reg::kR13:
      return "r13";
    case Reg::kR14:
      return "r14";
    case Reg::kR15:
      return "r15";
  }
  return "r?";
}

Operand RegOp(Reg reg) { return Operand{AddrMode::kRegister, reg, 0}; }

Operand IndexedOp(Reg reg, uint16_t index) { return Operand{AddrMode::kIndexed, reg, index}; }

Operand SymbolicOp(uint16_t pc_relative_offset) {
  return Operand{AddrMode::kSymbolic, Reg::kPc, pc_relative_offset};
}

Operand AbsoluteOp(uint16_t address) { return Operand{AddrMode::kAbsolute, Reg::kSr, address}; }

Operand IndirectOp(Reg reg) { return Operand{AddrMode::kIndirect, reg, 0}; }

Operand IndirectAutoIncOp(Reg reg) { return Operand{AddrMode::kIndirectAutoInc, reg, 0}; }

Operand ImmediateOp(uint16_t value) {
  switch (value) {
    case 0:
    case 1:
    case 2:
    case 4:
    case 8:
    case 0xFFFF:
      return Operand{AddrMode::kConst, Reg::kCg, value};
    default:
      return Operand{AddrMode::kImmediate, Reg::kPc, value};
  }
}

Operand RawImmediateOp(uint16_t value) { return Operand{AddrMode::kImmediate, Reg::kPc, value}; }

int Instruction::WordCount() const {
  if (IsJump(op)) {
    return 1;
  }
  int words = 1;
  if (IsFormatOne(op) && ModeHasExtWord(src.mode)) {
    ++words;
  }
  if (op != Opcode::kReti && ModeHasExtWord(dst.mode)) {
    ++words;
  }
  return words;
}

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kMov:
      return "mov";
    case Opcode::kAdd:
      return "add";
    case Opcode::kAddc:
      return "addc";
    case Opcode::kSubc:
      return "subc";
    case Opcode::kSub:
      return "sub";
    case Opcode::kCmp:
      return "cmp";
    case Opcode::kDadd:
      return "dadd";
    case Opcode::kBit:
      return "bit";
    case Opcode::kBic:
      return "bic";
    case Opcode::kBis:
      return "bis";
    case Opcode::kXor:
      return "xor";
    case Opcode::kAnd:
      return "and";
    case Opcode::kRrc:
      return "rrc";
    case Opcode::kSwpb:
      return "swpb";
    case Opcode::kRra:
      return "rra";
    case Opcode::kSxt:
      return "sxt";
    case Opcode::kPush:
      return "push";
    case Opcode::kCall:
      return "call";
    case Opcode::kReti:
      return "reti";
    case Opcode::kJnz:
      return "jnz";
    case Opcode::kJz:
      return "jz";
    case Opcode::kJnc:
      return "jnc";
    case Opcode::kJc:
      return "jc";
    case Opcode::kJn:
      return "jn";
    case Opcode::kJge:
      return "jge";
    case Opcode::kJl:
      return "jl";
    case Opcode::kJmp:
      return "jmp";
  }
  return "???";
}

}  // namespace amulet
