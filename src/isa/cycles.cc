#include "src/isa/cycles.h"

namespace amulet {

namespace {

// Source operands fall into three timing groups.
enum class SrcGroup { kRegisterLike, kIndirectLike, kIndexedLike };

SrcGroup GroupOf(const Operand& op) {
  switch (op.mode) {
    case AddrMode::kRegister:
    case AddrMode::kConst:
      return SrcGroup::kRegisterLike;
    case AddrMode::kIndirect:
    case AddrMode::kIndirectAutoInc:
    case AddrMode::kImmediate:
      return SrcGroup::kIndirectLike;
    case AddrMode::kIndexed:
    case AddrMode::kSymbolic:
    case AddrMode::kAbsolute:
      return SrcGroup::kIndexedLike;
  }
  return SrcGroup::kRegisterLike;
}

bool DstIsMemory(const Operand& op) { return op.mode != AddrMode::kRegister; }

bool DstIsPc(const Operand& op) {
  return op.mode == AddrMode::kRegister && op.reg == Reg::kPc;
}

int FormatOneCycles(const Instruction& insn) {
  const SrcGroup src = GroupOf(insn.src);
  const bool dst_mem = DstIsMemory(insn.dst);
  // SLAU144 Table 3-15 (condensed).
  int base;
  switch (src) {
    case SrcGroup::kRegisterLike:
      base = dst_mem ? 4 : 1;
      break;
    case SrcGroup::kIndirectLike:
      base = dst_mem ? 5 : 2;
      break;
    case SrcGroup::kIndexedLike:
      base = dst_mem ? 6 : 3;
      break;
  }
  if (DstIsPc(insn.dst)) {
    // Branch through a register destination refills the pipeline.
    if (src == SrcGroup::kRegisterLike) {
      base += 1;  // MOV Rn,PC = 2
    } else if (insn.src.mode == AddrMode::kIndirectAutoInc ||
               insn.src.mode == AddrMode::kImmediate) {
      base += 1;  // MOV @Rn+,PC / BR #N = 3
    }
    // @Rn -> PC and x(Rn) -> PC keep the base count.
  }
  return base;
}

int FormatTwoCycles(const Instruction& insn) {
  const Operand& op = insn.dst;
  switch (insn.op) {
    case Opcode::kRrc:
    case Opcode::kRra:
    case Opcode::kSwpb:
    case Opcode::kSxt:
      switch (GroupOf(op)) {
        case SrcGroup::kRegisterLike:
          return 1;
        case SrcGroup::kIndirectLike:
          return 3;
        case SrcGroup::kIndexedLike:
          return 4;
      }
      return 1;
    case Opcode::kPush:
      switch (op.mode) {
        case AddrMode::kRegister:
        case AddrMode::kConst:
          return 3;
        case AddrMode::kIndirect:
          return 4;
        case AddrMode::kIndirectAutoInc:
          return 5;
        case AddrMode::kImmediate:
          return 4;
        case AddrMode::kIndexed:
        case AddrMode::kSymbolic:
        case AddrMode::kAbsolute:
          return 5;
      }
      return 3;
    case Opcode::kCall:
      switch (op.mode) {
        case AddrMode::kRegister:
        case AddrMode::kConst:
        case AddrMode::kIndirect:
          return 4;
        case AddrMode::kIndirectAutoInc:
        case AddrMode::kImmediate:
        case AddrMode::kIndexed:
        case AddrMode::kSymbolic:
        case AddrMode::kAbsolute:
          return 5;
      }
      return 4;
    case Opcode::kReti:
      return 5;
    default:
      return 1;
  }
}

}  // namespace

int InstructionCycles(const Instruction& insn) {
  if (IsJump(insn.op)) {
    return 2;  // all jumps: 2 cycles, taken or not
  }
  if (IsFormatTwo(insn.op)) {
    return FormatTwoCycles(insn);
  }
  return FormatOneCycles(insn);
}

}  // namespace amulet
