// Textual disassembly of decoded instructions, in the classic MSP430 assembly
// syntax the project's own assembler accepts (round-trippable).
#ifndef SRC_ISA_DISASSEMBLER_H_
#define SRC_ISA_DISASSEMBLER_H_

#include <cstdint>
#include <string>

#include "src/isa/instruction.h"

namespace amulet {

// `pc` is the address of the instruction's first word; used to render
// symbolic operands and jump targets as absolute addresses.
std::string Disassemble(const Instruction& insn, uint16_t pc);

}  // namespace amulet

#endif  // SRC_ISA_DISASSEMBLER_H_
