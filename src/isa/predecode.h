// Dense predecoded instruction records for the fast simulator core.
//
// The cycle-accurate interpreter pays for isa::Decode() plus separate
// extension-word bus fetches on every step. Code in FRAM rarely changes, so
// the CPU can instead decode each instruction once into a flat record --
// resolved operands, extension-word addresses, next PC, base cycle cost, and
// a direct dispatch-table index -- and replay it from a cache keyed by word
// address (see src/mcu/code_cache.h). The record is derived state: it is
// never serialized, and any write to the underlying words invalidates it.
#ifndef SRC_ISA_PREDECODE_H_
#define SRC_ISA_PREDECODE_H_

#include <cstdint>

#include "src/isa/instruction.h"

namespace amulet {

// Execution class of a predecoded record; kInvalid marks words that fail to
// decode (reserved/undefined encodings) so the fast path can replay the
// interpreter's invalid-opcode halt without re-decoding.
enum class InsnClass : uint8_t {
  kFormatOne,
  kFormatTwo,
  kJump,
  kInvalid,
};

// Number of distinct fast-dispatch handler slots: 12 Format-I opcodes,
// 7 Format-II opcodes, 8 jump conditions, then specialized slots for the
// operand classes that dominate compiled code and touch no memory --
// 12 Format-I slots (register destination; register/constant/immediate
// source) and 4 Format-II slots (RRC/SWPB/RRA/SXT on a register) -- executed
// without the generic operand machinery.
inline constexpr int kFastAluRegDstBase = 27;
inline constexpr int kFastFmt2RegBase = kFastAluRegDstBase + 12;
inline constexpr int kNumFastHandlers = kFastFmt2RegBase + 4;

struct PredecodedInsn {
  // Fully resolved instruction: extension words are already filled in from
  // the instruction stream, exactly as the interpreter would fetch them.
  Instruction insn;
  // Stream addresses of the extension words (0 when the operand has none);
  // symbolic-mode operands resolve relative to these.
  uint16_t src_ext_addr = 0;
  uint16_t dst_ext_addr = 0;
  // PC after the whole instruction has been fetched.
  uint16_t next_pc = 0;
  // Instruction length in 16-bit words (1..3).
  uint8_t length_words = 1;
  // InstructionCycles() of the resolved instruction; pure in the decoded
  // operand modes, so it is safe to precompute.
  uint8_t base_cycles = 0;
  // Direct index into the CPU's fast dispatch table (see FastHandlerIndex).
  uint8_t handler = 0;
  InsnClass cls = InsnClass::kInvalid;
};

// Maps an opcode to its dense dispatch slot:
//   Format I  -> 0..11, Format II -> 12..18, jumps -> 19..26.
int FastHandlerIndex(Opcode op);

// Decodes the instruction whose first word sits at `addr`, with `words`
// holding the three consecutive stream words starting there (unused tail
// words are ignored). On any decode failure the record comes back as
// InsnClass::kInvalid with length 1 -- decode success and instruction length
// are pure functions of words[0], so this mirrors the interpreter's
// probe-then-fetch sequence exactly.
void PredecodeInto(uint16_t addr, const uint16_t words[3], PredecodedInsn* out);

}  // namespace amulet

#endif  // SRC_ISA_PREDECODE_H_
