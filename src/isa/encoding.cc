#include "src/isa/encoding.h"

#include "src/common/strings.h"

namespace amulet {

namespace {

struct FieldEncoding {
  uint8_t reg = 0;
  uint8_t as = 0;        // 2-bit addressing field
  bool has_ext = false;  // extension word follows
  uint16_t ext = 0;
};

// Maps a source-position operand onto the As/reg fields. Constant-generator
// values use the dedicated R2/R3 combinations and need no extension word
// (that is the whole point of the CG hardware).
Result<FieldEncoding> EncodeSrc(const Operand& op) {
  FieldEncoding out;
  switch (op.mode) {
    case AddrMode::kRegister:
      out.reg = RegIndex(op.reg);
      out.as = 0;
      return out;
    case AddrMode::kIndexed:
      if (op.reg == Reg::kPc || op.reg == Reg::kSr || op.reg == Reg::kCg) {
        return InvalidArgumentError("indexed mode is not encodable on PC/SR/R3");
      }
      out.reg = RegIndex(op.reg);
      out.as = 1;
      out.has_ext = true;
      out.ext = op.ext;
      return out;
    case AddrMode::kSymbolic:
      out.reg = RegIndex(Reg::kPc);
      out.as = 1;
      out.has_ext = true;
      out.ext = op.ext;
      return out;
    case AddrMode::kAbsolute:
      out.reg = RegIndex(Reg::kSr);
      out.as = 1;
      out.has_ext = true;
      out.ext = op.ext;
      return out;
    case AddrMode::kIndirect:
      if (op.reg == Reg::kSr || op.reg == Reg::kCg) {
        return InvalidArgumentError("@SR/@R3 encode constants, not indirect mode");
      }
      out.reg = RegIndex(op.reg);
      out.as = 2;
      return out;
    case AddrMode::kIndirectAutoInc:
      if (op.reg == Reg::kPc || op.reg == Reg::kSr || op.reg == Reg::kCg) {
        return InvalidArgumentError("@Rn+ is not encodable on PC/SR/R3");
      }
      out.reg = RegIndex(op.reg);
      out.as = 3;
      return out;
    case AddrMode::kImmediate:
      out.reg = RegIndex(Reg::kPc);
      out.as = 3;
      out.has_ext = true;
      out.ext = op.ext;
      return out;
    case AddrMode::kConst:
      switch (op.ext) {
        case 0:
          out.reg = RegIndex(Reg::kCg);
          out.as = 0;
          return out;
        case 1:
          out.reg = RegIndex(Reg::kCg);
          out.as = 1;
          return out;
        case 2:
          out.reg = RegIndex(Reg::kCg);
          out.as = 2;
          return out;
        case 0xFFFF:
          out.reg = RegIndex(Reg::kCg);
          out.as = 3;
          return out;
        case 4:
          out.reg = RegIndex(Reg::kSr);
          out.as = 2;
          return out;
        case 8:
          out.reg = RegIndex(Reg::kSr);
          out.as = 3;
          return out;
        default:
          return InvalidArgumentError(
              StrFormat("value %u is not constant-generator expressible", op.ext));
      }
  }
  return InternalError("unhandled addressing mode");
}

// Destination field is a single Ad bit: register (0) or indexed-class (1).
Result<FieldEncoding> EncodeDst(const Operand& op) {
  FieldEncoding out;
  switch (op.mode) {
    case AddrMode::kRegister:
      out.reg = RegIndex(op.reg);
      out.as = 0;
      return out;
    case AddrMode::kIndexed:
      if (op.reg == Reg::kPc || op.reg == Reg::kSr || op.reg == Reg::kCg) {
        return InvalidArgumentError("indexed destination is not encodable on PC/SR/R3");
      }
      out.reg = RegIndex(op.reg);
      out.as = 1;
      out.has_ext = true;
      out.ext = op.ext;
      return out;
    case AddrMode::kSymbolic:
      out.reg = RegIndex(Reg::kPc);
      out.as = 1;
      out.has_ext = true;
      out.ext = op.ext;
      return out;
    case AddrMode::kAbsolute:
      out.reg = RegIndex(Reg::kSr);
      out.as = 1;
      out.has_ext = true;
      out.ext = op.ext;
      return out;
    default:
      return InvalidArgumentError("destination must be register/indexed/symbolic/absolute");
  }
}

Result<Operand> DecodeSrc(uint8_t reg, uint8_t as) {
  // Constant generators first.
  if (reg == RegIndex(Reg::kCg)) {
    switch (as) {
      case 0:
        return Operand{AddrMode::kConst, Reg::kCg, 0};
      case 1:
        return Operand{AddrMode::kConst, Reg::kCg, 1};
      case 2:
        return Operand{AddrMode::kConst, Reg::kCg, 2};
      case 3:
        return Operand{AddrMode::kConst, Reg::kCg, 0xFFFF};
      default:
        break;
    }
  }
  if (reg == RegIndex(Reg::kSr) && as >= 2) {
    // Normalized to reg=kCg so operands compare equal regardless of which
    // constant-generator register realizes them.
    return Operand{AddrMode::kConst, Reg::kCg, static_cast<uint16_t>(as == 2 ? 4 : 8)};
  }
  switch (as) {
    case 0:
      return Operand{AddrMode::kRegister, RegFromIndex(reg), 0};
    case 1:
      if (reg == RegIndex(Reg::kPc)) {
        return Operand{AddrMode::kSymbolic, Reg::kPc, 0};
      }
      if (reg == RegIndex(Reg::kSr)) {
        return Operand{AddrMode::kAbsolute, Reg::kSr, 0};
      }
      return Operand{AddrMode::kIndexed, RegFromIndex(reg), 0};
    case 2:
      return Operand{AddrMode::kIndirect, RegFromIndex(reg), 0};
    case 3:
      if (reg == RegIndex(Reg::kPc)) {
        return Operand{AddrMode::kImmediate, Reg::kPc, 0};
      }
      return Operand{AddrMode::kIndirectAutoInc, RegFromIndex(reg), 0};
    default:
      return InternalError("addressing field out of range");
  }
}

Result<Operand> DecodeDst(uint8_t reg, uint8_t ad) {
  if (ad == 0) {
    return Operand{AddrMode::kRegister, RegFromIndex(reg), 0};
  }
  if (reg == RegIndex(Reg::kPc)) {
    return Operand{AddrMode::kSymbolic, Reg::kPc, 0};
  }
  if (reg == RegIndex(Reg::kSr)) {
    return Operand{AddrMode::kAbsolute, Reg::kSr, 0};
  }
  if (reg == RegIndex(Reg::kCg)) {
    return InvalidArgumentError("R3 destination with Ad=1 is a reserved encoding");
  }
  return Operand{AddrMode::kIndexed, RegFromIndex(reg), 0};
}

}  // namespace

Result<std::vector<uint16_t>> Encode(const Instruction& insn) {
  std::vector<uint16_t> words;
  if (IsJump(insn.op)) {
    if (insn.jump_offset_words < -512 || insn.jump_offset_words > 511) {
      return OutOfRangeError(
          StrFormat("jump offset %d outside [-512, 511] words", insn.jump_offset_words));
    }
    uint16_t cond = static_cast<uint16_t>(insn.op) - static_cast<uint16_t>(Opcode::kJnz);
    uint16_t word = static_cast<uint16_t>(0x2000 | (cond << 10) |
                                          (static_cast<uint16_t>(insn.jump_offset_words) & 0x3FF));
    words.push_back(word);
    return words;
  }
  if (IsFormatTwo(insn.op)) {
    if (insn.op == Opcode::kReti) {
      words.push_back(0x1300);
      return words;
    }
    ASSIGN_OR_RETURN(FieldEncoding field, EncodeSrc(insn.dst));
    uint16_t op3 = static_cast<uint16_t>(insn.op) - static_cast<uint16_t>(Opcode::kRrc);
    uint16_t word = static_cast<uint16_t>(0x1000 | (op3 << 7) | (insn.byte ? 0x40 : 0) |
                                          (field.as << 4) | field.reg);
    words.push_back(word);
    if (field.has_ext) {
      words.push_back(field.ext);
    }
    return words;
  }
  // Format I.
  ASSIGN_OR_RETURN(FieldEncoding src, EncodeSrc(insn.src));
  ASSIGN_OR_RETURN(FieldEncoding dst, EncodeDst(insn.dst));
  uint16_t word = static_cast<uint16_t>((static_cast<uint16_t>(insn.op) << 12) | (src.reg << 8) |
                                        ((dst.as != 0 ? 1 : 0) << 7) | (insn.byte ? 0x40 : 0) |
                                        (src.as << 4) | dst.reg);
  words.push_back(word);
  if (src.has_ext) {
    words.push_back(src.ext);
  }
  if (dst.has_ext) {
    words.push_back(dst.ext);
  }
  return words;
}

Result<Instruction> Decode(std::span<const uint16_t> words) {
  if (words.empty()) {
    return InvalidArgumentError("empty instruction stream");
  }
  const uint16_t word = words[0];
  size_t next_ext = 1;
  auto take_ext = [&]() -> Result<uint16_t> {
    if (next_ext >= words.size()) {
      return OutOfRangeError("instruction extension word missing");
    }
    return words[next_ext++];
  };

  Instruction insn;
  const uint16_t top = word >> 12;
  if (top >= 0x4) {
    // Format I.
    insn.op = static_cast<Opcode>(top);
    insn.byte = (word & 0x40) != 0;
    ASSIGN_OR_RETURN(insn.src, DecodeSrc((word >> 8) & 0xF, (word >> 4) & 0x3));
    if (ModeHasExtWord(insn.src.mode)) {
      ASSIGN_OR_RETURN(insn.src.ext, take_ext());
    }
    ASSIGN_OR_RETURN(insn.dst, DecodeDst(word & 0xF, (word >> 7) & 0x1));
    if (ModeHasExtWord(insn.dst.mode)) {
      ASSIGN_OR_RETURN(insn.dst.ext, take_ext());
    }
    return insn;
  }
  if (top == 0x2 || top == 0x3) {
    // Jump.
    uint16_t cond = (word >> 10) & 0x7;
    insn.op = static_cast<Opcode>(static_cast<uint16_t>(Opcode::kJnz) + cond);
    int16_t offset = static_cast<int16_t>(word & 0x3FF);
    if ((offset & 0x200) != 0) {
      offset = static_cast<int16_t>(offset | ~0x3FF);  // sign-extend 10 bits
    }
    insn.jump_offset_words = offset;
    return insn;
  }
  if (top == 0x1 && (word & 0x0C00) == 0) {
    // Format II.
    uint16_t op3 = (word >> 7) & 0x7;
    if (op3 > 6) {
      return InvalidArgumentError(StrFormat("reserved format-II opcode in word %s",
                                            HexWord(word).c_str()));
    }
    insn.op = static_cast<Opcode>(static_cast<uint16_t>(Opcode::kRrc) + op3);
    if (insn.op == Opcode::kReti) {
      return insn;
    }
    insn.byte = (word & 0x40) != 0;
    ASSIGN_OR_RETURN(insn.dst, DecodeSrc(word & 0xF, (word >> 4) & 0x3));
    if (ModeHasExtWord(insn.dst.mode)) {
      ASSIGN_OR_RETURN(insn.dst.ext, take_ext());
    }
    if (insn.byte && (insn.op == Opcode::kSwpb || insn.op == Opcode::kSxt ||
                      insn.op == Opcode::kCall)) {
      return InvalidArgumentError("SWPB/SXT/CALL have no byte form");
    }
    return insn;
  }
  return InvalidArgumentError(StrFormat("undefined instruction word %s", HexWord(word).c_str()));
}

}  // namespace amulet
