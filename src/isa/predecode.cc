#include "src/isa/predecode.h"

#include <span>

#include "src/isa/cycles.h"
#include "src/isa/encoding.h"

namespace amulet {

int FastHandlerIndex(Opcode op) {
  if (IsFormatOne(op)) {
    return static_cast<int>(op) - static_cast<int>(Opcode::kMov);
  }
  if (IsFormatTwo(op)) {
    return 12 + static_cast<int>(op) - static_cast<int>(Opcode::kRrc);
  }
  return 19 + static_cast<int>(op) - static_cast<int>(Opcode::kJnz);
}

void PredecodeInto(uint16_t addr, const uint16_t words[3], PredecodedInsn* out) {
  *out = PredecodedInsn{};
  // Decode over the full three-word window. The interpreter decodes a probe
  // of {w0, 0, 0} and then overwrites the extension fields with separately
  // fetched words; since Decode() consumes extension words in stream order,
  // decoding {w0, w1, w2} directly yields the identical resolved instruction,
  // and the identical success/failure verdict (which depends only on w0).
  Result<Instruction> decoded = Decode(std::span<const uint16_t>(words, 3));
  if (!decoded.ok()) {
    out->cls = InsnClass::kInvalid;
    out->length_words = 1;
    return;
  }
  out->insn = std::move(decoded).value();

  const Instruction& insn = out->insn;
  uint16_t next = static_cast<uint16_t>(addr + 2);
  int length = 1;
  if (IsFormatOne(insn.op) && ModeHasExtWord(insn.src.mode)) {
    out->src_ext_addr = next;
    next = static_cast<uint16_t>(next + 2);
    ++length;
  }
  if (!IsJump(insn.op) && insn.op != Opcode::kReti && ModeHasExtWord(insn.dst.mode)) {
    out->dst_ext_addr = next;
    next = static_cast<uint16_t>(next + 2);
    ++length;
  }
  out->next_pc = next;
  out->length_words = static_cast<uint8_t>(length);
  out->base_cycles = static_cast<uint8_t>(InstructionCycles(insn));
  out->handler = static_cast<uint8_t>(FastHandlerIndex(insn.op));
  // Upgrade the dominant operand class to its specialized handler. Decode()
  // already normalized constant-generator sources into kConst with the value
  // in `ext`, so kRegister/kConst/kImmediate sources all read without a bus
  // access, and a kRegister destination writes without one.
  if (IsFormatOne(insn.op) && insn.dst.mode == AddrMode::kRegister &&
      (insn.src.mode == AddrMode::kRegister || insn.src.mode == AddrMode::kConst ||
       insn.src.mode == AddrMode::kImmediate)) {
    out->handler = static_cast<uint8_t>(kFastAluRegDstBase + static_cast<int>(insn.op) -
                                        static_cast<int>(Opcode::kMov));
  } else if (insn.op >= Opcode::kRrc && insn.op <= Opcode::kSxt &&
             insn.dst.mode == AddrMode::kRegister) {
    out->handler = static_cast<uint8_t>(kFastFmt2RegBase + static_cast<int>(insn.op) -
                                        static_cast<int>(Opcode::kRrc));
  }
  out->cls = IsJump(insn.op)        ? InsnClass::kJump
             : IsFormatTwo(insn.op) ? InsnClass::kFormatTwo
                                    : InsnClass::kFormatOne;
}

}  // namespace amulet
