// Differential fuzzing: generate random (deterministic, seeded) integer
// programs, evaluate them with a host-side reference that mirrors AmuletC
// semantics exactly (16/32-bit two's complement, C truncation division,
// shift counts masked), compile and run them on the simulated MSP430, and
// compare — under every memory model. Any divergence is a codegen, runtime-
// routine, or isolation-transparency bug.
//
// Every program additionally runs twice on the simulator — once on the
// predecoded fast-dispatch core and once on the baseline interpreter
// (cpu().set_predecode(false)) — and the two machines' full snapshots must
// be byte-identical. This is the bit-identity gate for the predecode cache
// (docs/simulator.md, "Predecoded instruction cache").
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/mcu/hostio.h"
#include "src/mcu/memory_map.h"
#include "src/mcu/snapshot.h"
#include "tests/compile_test_util.h"

namespace amulet {
namespace {

// Deterministic RNG (so failures reproduce by seed).
class Rng {
 public:
  explicit Rng(uint32_t seed) : state_(seed * 2654435761u + 1) {}
  uint32_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }
  int Range(int lo, int hi) { return lo + static_cast<int>(Next() % (hi - lo + 1)); }

 private:
  uint32_t state_;
};

// A generated expression: C source text plus its reference value, tracked at
// the precision AmuletC would use (wide = 32-bit, else 16-bit).
struct Value {
  std::string text;
  int32_t value = 0;  // full-width two's-complement bit pattern
  bool wide = false;
  bool is_unsigned = false;
};

int32_t Truncate(int64_t v, bool wide) {
  if (wide) {
    return static_cast<int32_t>(static_cast<uint64_t>(v) & 0xFFFFFFFFu);
  }
  return static_cast<int16_t>(static_cast<uint64_t>(v) & 0xFFFF);
}

Value MakeLeaf(Rng* rng) {
  Value v;
  const int kind = rng->Range(0, 5);
  switch (kind) {
    case 0:
      v.value = rng->Range(0, 100);
      break;
    case 1:
      v.value = rng->Range(-50, 50);
      break;
    case 2:
      v.value = rng->Range(0, 30000);
      break;
    case 3:  // long literal
      v.value = rng->Range(-100000, 100000);
      v.wide = true;
      break;
    case 4:
      v.value = rng->Range(70000, 2000000);
      v.wide = true;
      break;
    default:
      v.value = rng->Range(1, 12);
      break;
  }
  if (!v.wide) {
    v.value = Truncate(v.value, false);
  }
  if (v.wide) {
    // Spell wide literals so the source types them as long regardless of
    // magnitude: `-47419` alone would lex as unary minus on a 16-bit
    // unsigned literal and wrap at 16 bits.
    if (v.value < 0) {
      v.text = StrFormat("(-(long)%d)", -v.value);
    } else {
      v.text = StrFormat("((long)%d)", v.value);
    }
  } else {
    v.text = v.value < 0 ? StrFormat("(%d)", v.value) : StrFormat("%d", v.value);
  }
  return v;
}

Value Combine(Rng* rng, const Value& a, const Value& b) {
  Value out;
  out.wide = a.wide || b.wide;
  out.is_unsigned = false;
  // Reference operands, promoted to the result width like AmuletC.
  const int64_t av = a.wide == out.wide ? a.value : a.value;  // sign-extends via int32
  const int64_t bv = b.wide == out.wide ? b.value : b.value;
  const int op = rng->Range(0, 8);
  switch (op) {
    case 0:
      out.text = StrFormat("(%s + %s)", a.text.c_str(), b.text.c_str());
      out.value = Truncate(av + bv, out.wide);
      break;
    case 1:
      out.text = StrFormat("(%s - %s)", a.text.c_str(), b.text.c_str());
      out.value = Truncate(av - bv, out.wide);
      break;
    case 2:
      out.text = StrFormat("(%s * %s)", a.text.c_str(), b.text.c_str());
      out.value = Truncate(av * bv, out.wide);
      break;
    case 3: {
      // Division with a guaranteed non-zero divisor expression. When the
      // zero divisor is replaced by a literal, the result width follows the
      // replacement, not the discarded operand.
      const int64_t divisor = bv == 0 ? 7 : bv;
      std::string divisor_text = bv == 0 ? "7" : b.text;
      out.wide = a.wide || (bv != 0 && b.wide);
      out.text = StrFormat("(%s / %s)", a.text.c_str(), divisor_text.c_str());
      out.value = Truncate(av / divisor, out.wide);
      break;
    }
    case 4: {
      const int64_t divisor = bv == 0 ? 5 : bv;
      std::string divisor_text = bv == 0 ? "5" : b.text;
      out.wide = a.wide || (bv != 0 && b.wide);
      out.text = StrFormat("(%s %% %s)", a.text.c_str(), divisor_text.c_str());
      out.value = Truncate(av % divisor, out.wide);
      break;
    }
    case 5:
      out.text = StrFormat("(%s & %s)", a.text.c_str(), b.text.c_str());
      out.value = Truncate(av & bv, out.wide);
      break;
    case 6:
      out.text = StrFormat("(%s | %s)", a.text.c_str(), b.text.c_str());
      out.value = Truncate(av | bv, out.wide);
      break;
    case 7:
      out.text = StrFormat("(%s ^ %s)", a.text.c_str(), b.text.c_str());
      out.value = Truncate(av ^ bv, out.wide);
      break;
    default: {
      // Comparison: yields a 16-bit 0/1 (both operands promoted).
      const bool lt = out.wide ? (static_cast<int32_t>(a.value) < static_cast<int32_t>(b.value))
                               : (static_cast<int16_t>(a.value) < static_cast<int16_t>(b.value));
      out.text = StrFormat("(%s < %s)", a.text.c_str(), b.text.c_str());
      out.value = lt ? 1 : 0;
      out.wide = false;
      break;
    }
  }
  return out;
}

Value GenerateExpr(Rng* rng, int depth) {
  if (depth == 0 || rng->Range(0, 4) == 0) {
    return MakeLeaf(rng);
  }
  Value a = GenerateExpr(rng, depth - 1);
  Value b = GenerateExpr(rng, depth - 1);
  return Combine(rng, a, b);
}

class FuzzDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferential, HostAndSimulatorAgreeUnderEveryModel) {
  Rng rng(static_cast<uint32_t>(GetParam()));
  // Several independent expressions per program, accumulated into globals.
  std::string source = "long r0; long r1; long r2; int r3;\nvoid main(void) {\n";
  int32_t expected[4] = {0, 0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    Value v = GenerateExpr(&rng, 4);
    source += StrFormat("  r%d = %s;\n", i, v.text.c_str());
    expected[i] = v.wide ? v.value : static_cast<int32_t>(static_cast<int16_t>(v.value));
  }
  Value narrow = GenerateExpr(&rng, 3);
  source += StrFormat("  r3 = (int)(%s);\n", narrow.text.c_str());
  expected[3] = static_cast<int16_t>(Truncate(narrow.value, false));
  source += "}\n";

  for (MemoryModel model :
       {MemoryModel::kNoIsolation, MemoryModel::kMpu, MemoryModel::kSoftwareOnly}) {
    Machine m;
    auto out = CompileAndRun(&m, source, model, 50'000'000);
    ASSERT_TRUE(out.ok()) << out.status().ToString() << "\nprogram:\n" << source;
    ASSERT_EQ(out->run.stop_code, 4) << source;

    // Fast-dispatch vs baseline-interpreter bit identity: the same program on
    // a second machine with predecode disabled must end in the exact same
    // architectural state (snapshot bytes cover registers, memory, cycle and
    // instruction counters, bus accumulators — everything serialized).
    Machine baseline;
    baseline.cpu().set_predecode(false);
    auto slow = CompileAndRun(&baseline, source, model, 50'000'000);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString() << "\nprogram:\n" << source;
    EXPECT_EQ(slow->run.stop_code, out->run.stop_code) << source;
    EXPECT_EQ(slow->run.cycles, out->run.cycles)
        << "cycle divergence under " << MemoryModelName(model) << "\nprogram:\n" << source;
    EXPECT_EQ(CaptureSnapshot(baseline).bytes, CaptureSnapshot(m).bytes)
        << "snapshot divergence under " << MemoryModelName(model) << "\nprogram:\n"
        << source;
    for (int i = 0; i < 3; ++i) {
      uint16_t addr = out->image.SymbolOrZero(StrFormat("t_g_r%d", i));
      int32_t got = static_cast<int32_t>(
          static_cast<uint32_t>(m.bus().PeekWord(addr)) |
          (static_cast<uint32_t>(m.bus().PeekWord(addr + 2)) << 16));
      EXPECT_EQ(got, expected[i])
          << "r" << i << " under " << MemoryModelName(model) << "\nprogram:\n"
          << source;
    }
    uint16_t addr3 = out->image.SymbolOrZero("t_g_r3");
    EXPECT_EQ(static_cast<int16_t>(m.bus().PeekWord(addr3)),
              static_cast<int16_t>(expected[3]))
        << "r3 under " << MemoryModelName(model) << "\nprogram:\n" << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential, ::testing::Range(1, 101));

// Differential gate for the phase-2.5 check optimizer: every seeded program
// compiles twice — optimizer on and off — and the two firmwares must be
// trap-for-trap equivalent under every memory model: same stop code, same
// HOSTIO fault code/address on the first fault, and (for clean runs) the
// same final globals. Programs mix elidable accesses (counted loops, masked
// and clamped indices — the optimizer deletes these checks) with
// data-dependent ones it must keep, and a third of the seeds end in a
// deliberate out-of-bounds store (negative for the low check, huge positive
// for the high check).
class CheckOptDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CheckOptDifferential, OptOnAndOffAgreeUnderEveryModel) {
  Rng rng(static_cast<uint32_t>(GetParam()) * 2246822519u + 3);
  std::string body;
  // Elidable: counted loop covering the whole array.
  body += StrFormat("  for (int i = 0; i < 16; i++) { a[i] = i * %d; }\n", rng.Range(1, 9));
  // Elidable: masked index, trip count past the array length.
  body += StrFormat("  for (int i = 0; i < %d; i++) { m[i & 7] = m[i & 7] + i; }\n",
                    rng.Range(8, 40));
  // Elidable: clamped scalar index.
  body += StrFormat(
      "  int j = %d;\n  if (j < 0) { j = 0; }\n  if (j > 15) { j = 15; }\n  a[j] = %d;\n",
      rng.Range(-30, 40), rng.Range(1, 99));
  // Not elidable: the index depends on a global, which the analysis cannot
  // bound — these checks must survive and still pass.
  body += "  idx = m[0] & 15;\n  sum = sum + a[idx];\n";
  body += "  for (int i = 0; i < 16; i++) { sum = sum + a[i]; }\n";
  const int oob = rng.Range(0, 2);
  if (oob == 1) {
    body += StrFormat("  a[idx - %d] = 1;\n", rng.Range(20, 90));  // low-bound fault
  } else if (oob == 2) {
    body += StrFormat("  a[idx + %d] = 1;\n", rng.Range(4000, 9000));  // high-bound fault
  }
  const std::string source =
      "int a[16];\nint m[8];\nint sum;\nint idx;\nvoid main(void) {\n" + body + "}\n";

  for (MemoryModel model : {MemoryModel::kNoIsolation, MemoryModel::kFeatureLimited,
                            MemoryModel::kMpu, MemoryModel::kSoftwareOnly}) {
    Machine opt_machine;
    Machine ref_machine;
    auto opt = CompileAndRun(&opt_machine, source, model, 2'000'000, /*optimize_checks=*/true);
    auto ref = CompileAndRun(&ref_machine, source, model, 2'000'000, /*optimize_checks=*/false);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString() << "\nprogram:\n" << source;
    ASSERT_TRUE(ref.ok()) << ref.status().ToString() << "\nprogram:\n" << source;
    EXPECT_EQ(opt->run.stop_code, ref->run.stop_code)
        << "stop divergence under " << MemoryModelName(model) << "\nprogram:\n" << source;
    EXPECT_EQ(opt_machine.bus().PeekWord(kHostIoRegBase + kHostIoFaultCode),
              ref_machine.bus().PeekWord(kHostIoRegBase + kHostIoFaultCode))
        << "fault-code divergence under " << MemoryModelName(model) << "\nprogram:\n"
        << source;
    EXPECT_EQ(opt_machine.bus().PeekWord(kHostIoRegBase + kHostIoFaultAddr),
              ref_machine.bus().PeekWord(kHostIoRegBase + kHostIoFaultAddr))
        << "fault-addr divergence under " << MemoryModelName(model) << "\nprogram:\n"
        << source;
    if (ref->run.stop_code == kStopMainDone) {
      const uint16_t a_opt = opt->image.SymbolOrZero("t_g_a");
      const uint16_t a_ref = ref->image.SymbolOrZero("t_g_a");
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(opt_machine.bus().PeekWord(a_opt + 2 * i),
                  ref_machine.bus().PeekWord(a_ref + 2 * i))
            << "a[" << i << "] under " << MemoryModelName(model) << "\nprogram:\n" << source;
      }
      const uint16_t m_opt = opt->image.SymbolOrZero("t_g_m");
      const uint16_t m_ref = ref->image.SymbolOrZero("t_g_m");
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(opt_machine.bus().PeekWord(m_opt + 2 * i),
                  ref_machine.bus().PeekWord(m_ref + 2 * i))
            << "m[" << i << "] under " << MemoryModelName(model) << "\nprogram:\n" << source;
      }
      EXPECT_EQ(GlobalWord(&opt_machine, opt->image, "sum"),
                GlobalWord(&ref_machine, ref->image, "sum"))
          << source;
      EXPECT_EQ(GlobalWord(&opt_machine, opt->image, "idx"),
                GlobalWord(&ref_machine, ref->image, "idx"))
          << source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckOptDifferential, ::testing::Range(1, 61));

}  // namespace
}  // namespace amulet
