// Front-end unit tests: lexer token streams, parser acceptance/shape,
// semantic analysis rules, type-system arithmetic (sizes, layout,
// promotions).
#include <gtest/gtest.h>

#include "src/lang/lexer.h"
#include "src/lang/parser.h"
#include "src/lang/sema.h"

namespace amulet {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

std::vector<Token> MustLex(const std::string& source) {
  auto tokens = Lex(source, "t");
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? std::move(*tokens) : std::vector<Token>{};
}

TEST(LexerTest, Identifiers) {
  auto tokens = MustLex("foo _bar baz42");
  ASSERT_EQ(tokens.size(), 4u);  // + EOF
  EXPECT_EQ(tokens[0].kind, Tok::kIdent);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].text, "_bar");
  EXPECT_EQ(tokens[2].text, "baz42");
  EXPECT_EQ(tokens[3].kind, Tok::kEof);
}

TEST(LexerTest, KeywordsAreNotIdentifiers) {
  auto tokens = MustLex("int intx");
  EXPECT_EQ(tokens[0].kind, Tok::kKwInt);
  EXPECT_EQ(tokens[1].kind, Tok::kIdent);
}

TEST(LexerTest, DecimalAndHexLiterals) {
  auto tokens = MustLex("0 42 0xFF 0x1234");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 0xFF);
  EXPECT_EQ(tokens[3].int_value, 0x1234);
}

TEST(LexerTest, LiteralLimits) {
  EXPECT_TRUE(Lex("65535").ok());
  EXPECT_TRUE(Lex("65536").ok()) << "32-bit literals type as long";
  EXPECT_TRUE(Lex("0xFFFFFFFF").ok());
  EXPECT_FALSE(Lex("4294967296").ok()) << "beyond 32 bits";
  EXPECT_FALSE(Lex("0x100000000").ok());
  EXPECT_FALSE(Lex("12abc").ok());
  EXPECT_FALSE(Lex("1.5").ok()) << "no floats in AmuletC";
}

TEST(LexerTest, CharLiterals) {
  auto tokens = MustLex("'a' '\\n' '\\0' '\\\\'");
  EXPECT_EQ(tokens[0].int_value, 'a');
  EXPECT_EQ(tokens[1].int_value, '\n');
  EXPECT_EQ(tokens[2].int_value, 0);
  EXPECT_EQ(tokens[3].int_value, '\\');
}

TEST(LexerTest, StringLiterals) {
  auto tokens = MustLex("\"hi\\tthere\"");
  ASSERT_EQ(tokens[0].kind, Tok::kStringLit);
  EXPECT_EQ(tokens[0].str_value, "hi\tthere");
}

TEST(LexerTest, UnterminatedLiteralsRejected) {
  EXPECT_FALSE(Lex("\"abc").ok());
  EXPECT_FALSE(Lex("'a").ok());
  EXPECT_FALSE(Lex("/* comment").ok());
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = MustLex("<< >> <= >= == != && || += -= <<= >>= ++ -- ->");
  Tok expected[] = {Tok::kShl,     Tok::kShr,    Tok::kLe,      Tok::kGe,
                    Tok::kEqEq,    Tok::kNe,     Tok::kAndAnd,  Tok::kOrOr,
                    Tok::kPlusEq,  Tok::kMinusEq, Tok::kShlEq,  Tok::kShrEq,
                    Tok::kPlusPlus, Tok::kMinusMinus, Tok::kArrow};
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, CommentsStripped) {
  auto tokens = MustLex("a // line\nb /* block\nstill */ c");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = MustLex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].col, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].col, 3);
}

// ---------------------------------------------------------------------------
// Parser (structure-level checks)
// ---------------------------------------------------------------------------

std::unique_ptr<Program> MustParse(const std::string& source) {
  auto program = Parse(source, "t");
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? std::move(*program) : nullptr;
}

TEST(ParserTest, FunctionShape) {
  auto program = MustParse("int add(int a, int b) { return a + b; }");
  ASSERT_NE(program, nullptr);
  FunctionDecl* fn = program->FindFunction("add");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->params.size(), 2u);
  EXPECT_EQ(fn->params[0].name, "a");
  EXPECT_EQ(fn->signature->return_type->kind, TypeKind::kInt16);
  ASSERT_NE(fn->body, nullptr);
}

TEST(ParserTest, GlobalsWithCommaList) {
  auto program = MustParse("int a, b = 3, c;");
  EXPECT_NE(program->FindGlobal("a"), nullptr);
  EXPECT_NE(program->FindGlobal("b"), nullptr);
  EXPECT_NE(program->FindGlobal("c"), nullptr);
}

TEST(ParserTest, PointerAndArrayDeclarators) {
  auto program = MustParse("int* p; int a[4]; char** pp; int m[2][3];");
  EXPECT_TRUE(program->FindGlobal("p")->type->IsPointer());
  const Type* a = program->FindGlobal("a")->type;
  ASSERT_TRUE(a->IsArray());
  EXPECT_EQ(a->array_length, 4);
  const Type* pp = program->FindGlobal("pp")->type;
  ASSERT_TRUE(pp->IsPointer());
  EXPECT_TRUE(pp->pointee->IsPointer());
  const Type* m = program->FindGlobal("m")->type;
  ASSERT_TRUE(m->IsArray());
  EXPECT_EQ(m->array_length, 2);
  ASSERT_TRUE(m->element->IsArray());
  EXPECT_EQ(m->element->array_length, 3);
}

TEST(ParserTest, FunctionPointerDeclarators) {
  auto program = MustParse("int (*handler)(int, int); int (*table[3])(void);");
  const Type* h = program->FindGlobal("handler")->type;
  ASSERT_TRUE(h->IsPointer());
  ASSERT_TRUE(h->pointee->IsFunction());
  EXPECT_EQ(h->pointee->params.size(), 2u);
  const Type* t = program->FindGlobal("table")->type;
  ASSERT_TRUE(t->IsArray());
  EXPECT_EQ(t->array_length, 3);
  EXPECT_TRUE(t->element->IsPointer());
}

TEST(ParserTest, StructLayout) {
  auto program = MustParse("struct S { char a; int b; char c; char d; };");
  StructDef* def = program->types.FindStruct("S");
  ASSERT_NE(def, nullptr);
  ASSERT_EQ(def->fields.size(), 4u);
  EXPECT_EQ(def->fields[0].offset, 0);  // char a
  EXPECT_EQ(def->fields[1].offset, 2);  // int b (aligned)
  EXPECT_EQ(def->fields[2].offset, 4);  // char c
  EXPECT_EQ(def->fields[3].offset, 5);  // char d (byte-packed)
  EXPECT_EQ(def->size, 6);              // padded to word alignment
  EXPECT_EQ(def->align, 2);
}

TEST(ParserTest, ByteOnlyStructIsBytePacked) {
  auto program = MustParse("struct B { char a; char b; char c; };");
  StructDef* def = program->types.FindStruct("B");
  EXPECT_EQ(def->size, 3);
  EXPECT_EQ(def->align, 1);
}

TEST(ParserTest, EnumConstantsFoldIntoLiterals) {
  auto program = MustParse("enum { A, B = 10, C }; int x[C];");
  EXPECT_EQ(program->FindGlobal("x")->type->array_length, 11);
}

TEST(ParserTest, ConstantExpressionArraySizes) {
  auto program = MustParse("int x[4 * 2 + 1];");
  EXPECT_EQ(program->FindGlobal("x")->type->array_length, 9);
}

TEST(ParserTest, RejectsMalformedSyntax) {
  EXPECT_FALSE(Parse("int f( { }", "t").ok());
  EXPECT_FALSE(Parse("int;", "t").ok());
  EXPECT_FALSE(Parse("int a[0];", "t").ok());
  EXPECT_FALSE(Parse("int a[-1];", "t").ok());
  EXPECT_FALSE(Parse("struct { int x; };", "t").ok()) << "anonymous structs unsupported";
  EXPECT_FALSE(Parse("int f(void) { return 1 + ; }", "t").ok());
  EXPECT_FALSE(Parse("void f(void) { if (1) }", "t").ok());
  EXPECT_FALSE(Parse("enum { A, A };", "t").ok());
  EXPECT_FALSE(Parse("struct S { int x; }; struct S { int y; };", "t").ok());
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto result = Parse("int a;\nint b = @;\n", "unit");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unit:2"), std::string::npos)
      << result.status().message();
}

// ---------------------------------------------------------------------------
// Sema (rules beyond what compiler_exec_test covers by execution)
// ---------------------------------------------------------------------------

Status Check(const std::string& source) {
  auto program = Parse(source, "t");
  if (!program.ok()) {
    return program.status();
  }
  FeatureAudit audit;
  SemaOptions options;
  options.api_numbers["amulet_noop"] = 0;
  return Analyze(program->get(), options, &audit);
}

TEST(SemaTest, AcceptsWellTypedPrograms) {
  EXPECT_TRUE(Check("int g; void f(void) { g = 1; }").ok());
  EXPECT_TRUE(Check("void f(int* p) { *p = 1; }").ok());
  EXPECT_TRUE(Check("struct S { int x; }; void f(struct S* s) { s->x = 1; }").ok());
  EXPECT_TRUE(Check("void f(void) { char c = 'x'; int i = c; c = i; }").ok())
      << "integer conversions are free";
  EXPECT_TRUE(Check("int a[3]; void f(void) { int* p = a; }").ok()) << "array decay";
  EXPECT_TRUE(Check("void f(void) { void* p = 0; int* q = p; }").ok()) << "void* converts";
  EXPECT_TRUE(Check("int h(void); int h(void) { return 1; } void f(void) { h(); }").ok())
      << "prototype then definition";
}

TEST(SemaTest, RejectsTypeErrors) {
  EXPECT_FALSE(Check("void f(void) { int* p; char* q; p = q; }").ok())
      << "mismatched pointer types";
  EXPECT_FALSE(Check("void f(void) { int x; int* p = &x; int y; y = p; }").ok())
      << "pointer to int needs a cast";
  EXPECT_FALSE(Check("void f(void) { int x; x(); }").ok()) << "calling a non-function";
  EXPECT_FALSE(Check("int f(void) { return; }").ok()) << "missing return value";
  EXPECT_FALSE(Check("void f(void) { return 1; }").ok()) << "void returning value";
  EXPECT_FALSE(Check("void f(void) { int a[3]; a = 0; }").ok()) << "assigning to array";
  EXPECT_FALSE(Check("struct S { int x; }; void f(void) { struct S s; s + 1; }").ok())
      << "struct arithmetic";
  EXPECT_FALSE(Check("void f(void) { int x = 1; *x; }").ok()) << "deref of int";
  EXPECT_FALSE(Check("void f(void) { void* p = 0; *p; }").ok()) << "deref of void*";
  EXPECT_FALSE(Check("void f(void) { &5; }").ok()) << "address of rvalue";
  EXPECT_FALSE(Check("void f(void) { continue; }").ok());
  EXPECT_FALSE(Check("void g(void) { } void f(void) { int x = g(); }").ok())
      << "void in value context";
}

TEST(SemaTest, ScopesNestCorrectly) {
  EXPECT_TRUE(Check("void f(void) { int x = 1; { int x = 2; } x = 3; }").ok())
      << "shadowing in inner block";
  EXPECT_FALSE(Check("void f(void) { { int y = 1; } y = 2; }").ok())
      << "inner decl not visible outside";
  EXPECT_FALSE(Check("void f(void) { for (int i = 0; i < 3; i++) { } i = 1; }").ok())
      << "for-init scope ends with the loop";
}

TEST(SemaTest, ApiPrototypesMarked) {
  auto program = Parse("int amulet_noop(void); void f(void) { amulet_noop(); }", "t");
  ASSERT_TRUE(program.ok());
  FeatureAudit audit;
  SemaOptions options;
  options.api_numbers["amulet_noop"] = 7;
  ASSERT_TRUE(Analyze(program->get(), options, &audit).ok());
  FunctionDecl* fn = (*program)->FindFunction("amulet_noop");
  EXPECT_TRUE(fn->is_api);
  EXPECT_EQ(fn->api_number, 7);
  EXPECT_EQ(audit.called_apis.count("amulet_noop"), 1u);
}

TEST(SemaTest, AppCannotDefineApiFunctions) {
  auto program = Parse("int amulet_noop(void) { return 1; }", "t");
  ASSERT_TRUE(program.ok());
  FeatureAudit audit;
  SemaOptions options;
  options.api_numbers["amulet_noop"] = 0;
  EXPECT_FALSE(Analyze(program->get(), options, &audit).ok());
}

TEST(SemaTest, GlobalInitializers) {
  auto program = Parse("int a = 5; int arr[3] = {1, 2}; char s[2] = {'h', 'i'}; "
                       "struct P { int x; int y; }; struct P p = {7, 9};",
                       "t");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  FeatureAudit audit;
  ASSERT_TRUE(Analyze(program->get(), SemaOptions{}, &audit).ok());
  GlobalVar* a = (*program)->FindGlobal("a");
  ASSERT_EQ(a->init_bytes.size(), 2u);
  EXPECT_EQ(a->init_bytes[0], 5);
  GlobalVar* arr = (*program)->FindGlobal("arr");
  ASSERT_EQ(arr->init_bytes.size(), 6u);
  EXPECT_EQ(arr->init_bytes[0], 1);
  EXPECT_EQ(arr->init_bytes[2], 2);
  EXPECT_EQ(arr->init_bytes[4], 0) << "zero-filled tail";
  GlobalVar* s = (*program)->FindGlobal("s");
  EXPECT_EQ(s->init_bytes[0], 'h');
  EXPECT_EQ(s->init_bytes[1], 'i');
  GlobalVar* p = (*program)->FindGlobal("p");
  EXPECT_EQ(p->init_bytes[0], 7);
  EXPECT_EQ(p->init_bytes[2], 9);
}

TEST(SemaTest, GlobalPointerInitializersBecomeRelocations) {
  auto program = Parse("int target; int* p = &target;", "t");
  ASSERT_TRUE(program.ok());
  FeatureAudit audit;
  ASSERT_TRUE(Analyze(program->get(), SemaOptions{}, &audit).ok());
  GlobalVar* p = (*program)->FindGlobal("p");
  ASSERT_EQ(p->init_relocs.size(), 1u);
  EXPECT_EQ(p->init_relocs[0].symbol, "target");
}

TEST(SemaTest, NonConstantGlobalInitializerRejected) {
  EXPECT_FALSE(Check("int f(void) { return 1; } int g = f();").ok());
}

TEST(SemaTest, CheckedAccessCounts) {
  auto program = Parse("int a[4]; void f(int i) { a[i] = a[i] + a[0]; }", "t");
  ASSERT_TRUE(program.ok());
  FeatureAudit audit;
  ASSERT_TRUE(Analyze(program->get(), SemaOptions{}, &audit).ok());
  // a[i] twice (dynamic), a[0] is constant-indexed but sema counts the
  // subscript; the precise checked count is established at lowering.
  EXPECT_GE(audit.checked_accesses["f"], 2);
}

// ---------------------------------------------------------------------------
// TypeTable
// ---------------------------------------------------------------------------

TEST(TypeTableTest, InterningGivesPointerEquality) {
  TypeTable types;
  EXPECT_EQ(types.PointerTo(types.Int16()), types.PointerTo(types.Int16()));
  EXPECT_EQ(types.ArrayOf(types.Int8(), 4), types.ArrayOf(types.Int8(), 4));
  EXPECT_NE(types.ArrayOf(types.Int8(), 4), types.ArrayOf(types.Int8(), 5));
  EXPECT_NE(types.PointerTo(types.Int16()), types.PointerTo(types.UInt16()));
}

TEST(TypeTableTest, SizesAndAlignment) {
  TypeTable types;
  EXPECT_EQ(types.Int8()->SizeBytes(), 1);
  EXPECT_EQ(types.UInt16()->SizeBytes(), 2);
  EXPECT_EQ(types.PointerTo(types.Void())->SizeBytes(), 2);
  EXPECT_EQ(types.ArrayOf(types.Int16(), 10)->SizeBytes(), 20);
  EXPECT_EQ(types.ArrayOf(types.Int8(), 3)->AlignBytes(), 1);
}

TEST(TypeTableTest, ToStringRenders) {
  TypeTable types;
  EXPECT_EQ(types.Int16()->ToString(), "int");
  EXPECT_EQ(types.PointerTo(types.Int8())->ToString(), "char*");
  EXPECT_EQ(types.ArrayOf(types.UInt16(), 7)->ToString(), "unsigned int[7]");
}


// ---------------------------------------------------------------------------
// long (32-bit) front-end rules
// ---------------------------------------------------------------------------

TEST(LongFrontEndTest, ParsesAllSpellings) {
  auto program = MustParse("long a; long int b; unsigned long c; signed long d;");
  EXPECT_EQ(program->FindGlobal("a")->type->kind, TypeKind::kInt32);
  EXPECT_EQ(program->FindGlobal("b")->type->kind, TypeKind::kInt32);
  EXPECT_EQ(program->FindGlobal("c")->type->kind, TypeKind::kUInt32);
  EXPECT_EQ(program->FindGlobal("d")->type->kind, TypeKind::kInt32);
}

TEST(LongFrontEndTest, SizesAndToString) {
  TypeTable types;
  EXPECT_EQ(types.Int32()->SizeBytes(), 4);
  EXPECT_EQ(types.UInt32()->SizeBytes(), 4);
  EXPECT_EQ(types.Int32()->AlignBytes(), 2);
  EXPECT_EQ(types.Int32()->ToString(), "long");
  EXPECT_EQ(types.UInt32()->ToString(), "unsigned long");
  EXPECT_TRUE(types.Int32()->IsWide());
  EXPECT_TRUE(types.Int32()->IsSigned());
  EXPECT_FALSE(types.UInt32()->IsSigned());
}

TEST(LongFrontEndTest, StructLayoutWithLong) {
  auto program = MustParse("struct S { char c; long v; int t; };");
  StructDef* def = program->types.FindStruct("S");
  EXPECT_EQ(def->fields[1].offset, 2) << "long aligns to 2 on the MSP430";
  EXPECT_EQ(def->fields[2].offset, 6);
  EXPECT_EQ(def->size, 8);
}

TEST(LongFrontEndTest, LiteralTyping) {
  auto program = MustParse(
      "void f(void) { long a = 100000; }");
  ASSERT_NE(program, nullptr);
  FeatureAudit audit;
  SemaOptions options;
  EXPECT_TRUE(Analyze(program.get(), options, &audit).ok());
}

TEST(LongFrontEndTest, WideRestrictionsEnforced) {
  EXPECT_FALSE(Check("int a[4]; void f(void) { long i = 1; a[i] = 0; }").ok());
  EXPECT_FALSE(Check("void f(int* p) { long off = 2; p = p + off; }").ok());
  EXPECT_FALSE(Check("void f(void) { long v = 1; switch (v) { case 1: ; } }").ok());
  EXPECT_TRUE(Check("int a[4]; void f(void) { long i = 1; a[(int)i] = 0; }").ok())
      << "explicit cast makes it legal";
}

TEST(LongFrontEndTest, ParameterWordBudget) {
  EXPECT_TRUE(Check("long f(long a, long b) { return a + b; } void g(void) { f(1, 2); }").ok());
  // 5 words rejected at lowering (not sema); verified in long_test.cpp.
}

}  // namespace
}  // namespace amulet
