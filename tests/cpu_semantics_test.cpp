// Exhaustive architectural semantics: every ALU instruction driven through
// edge-case operand pairs with hand-computed results and C/Z/N/V flags,
// in both word and byte widths. These lock the CPU core against regressions;
// the MSP430 flag rules (notably C as not-borrow on SUB/CMP, and C = !Z on
// logical ops) are easy to get subtly wrong.
#include <gtest/gtest.h>

#include "src/asm/assembler.h"
#include "src/common/strings.h"
#include "src/isa/disassembler.h"
#include "src/isa/encoding.h"
#include "src/mcu/machine.h"

namespace amulet {
namespace {

struct AluCase {
  Opcode op;
  bool byte;
  uint16_t src;
  uint16_t dst_in;
  bool carry_in;
  uint16_t expect;
  // Expected flags: -1 = don't care, 0/1 = required value.
  int c, z, n, v;
};

std::string CaseName(const AluCase& c) {
  return StrFormat("%s%s src=%04x dst=%04x cin=%d", std::string(OpcodeName(c.op)).c_str(),
                   c.byte ? ".b" : "", c.src, c.dst_in, c.carry_in ? 1 : 0);
}

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, MatchesArchitecture) {
  const AluCase& c = GetParam();
  Machine m;
  // Build:  <op>[.b] r5, r4  at 0x4400, then a stop (never reached: single step).
  Instruction insn;
  insn.op = c.op;
  insn.byte = c.byte;
  insn.src = RegOp(Reg::kR5);
  insn.dst = RegOp(Reg::kR4);
  auto words = Encode(insn);
  ASSERT_TRUE(words.ok());
  m.bus().PokeWord(0x4400, (*words)[0]);
  m.bus().PokeWord(kResetVector, 0x4400);
  m.cpu().Reset();
  m.cpu().set_reg(Reg::kR5, c.src);
  m.cpu().set_reg(Reg::kR4, c.dst_in);
  m.cpu().set_reg(Reg::kSr, c.carry_in ? kSrCarry : 0);
  ASSERT_EQ(m.cpu().Step(), StepResult::kOk) << CaseName(c);

  const bool writes = c.op != Opcode::kCmp && c.op != Opcode::kBit;
  if (writes) {
    EXPECT_EQ(m.cpu().reg(Reg::kR4), c.expect) << CaseName(c);
  } else {
    EXPECT_EQ(m.cpu().reg(Reg::kR4), c.dst_in) << CaseName(c) << " must not write";
  }
  const uint16_t sr = m.cpu().sr();
  if (c.c >= 0) EXPECT_EQ((sr & kSrCarry) != 0, c.c == 1) << CaseName(c) << " C";
  if (c.z >= 0) EXPECT_EQ((sr & kSrZero) != 0, c.z == 1) << CaseName(c) << " Z";
  if (c.n >= 0) EXPECT_EQ((sr & kSrNegative) != 0, c.n == 1) << CaseName(c) << " N";
  if (c.v >= 0) EXPECT_EQ((sr & kSrOverflow) != 0, c.v == 1) << CaseName(c) << " V";
}

INSTANTIATE_TEST_SUITE_P(
    Add, AluSemantics,
    ::testing::Values(
        //       op           byte  src     dst    cin  expect  c  z  n  v
        AluCase{Opcode::kAdd, false, 0x0001, 0x0001, 0, 0x0002, 0, 0, 0, 0},
        AluCase{Opcode::kAdd, false, 0xFFFF, 0x0001, 0, 0x0000, 1, 1, 0, 0},
        AluCase{Opcode::kAdd, false, 0x7FFF, 0x0001, 0, 0x8000, 0, 0, 1, 1},
        AluCase{Opcode::kAdd, false, 0x8000, 0x8000, 0, 0x0000, 1, 1, 0, 1},
        AluCase{Opcode::kAdd, false, 0x1234, 0x0000, 1, 0x1234, 0, 0, 0, 0},  // C_in ignored
        AluCase{Opcode::kAdd, true, 0x00FF, 0x0001, 0, 0x0000, 1, 1, 0, 0},
        AluCase{Opcode::kAdd, true, 0x007F, 0x0001, 0, 0x0080, 0, 0, 1, 1},
        AluCase{Opcode::kAddc, false, 0x0001, 0x0001, 1, 0x0003, 0, 0, 0, 0},
        AluCase{Opcode::kAddc, false, 0xFFFF, 0x0000, 1, 0x0000, 1, 1, 0, 0},
        AluCase{Opcode::kAddc, true, 0x00FE, 0x0001, 1, 0x0000, 1, 1, 0, 0}));

INSTANTIATE_TEST_SUITE_P(
    Sub, AluSemantics,
    ::testing::Values(
        AluCase{Opcode::kSub, false, 0x0003, 0x0005, 0, 0x0002, 1, 0, 0, 0},
        AluCase{Opcode::kSub, false, 0x0005, 0x0003, 0, 0xFFFE, 0, 0, 1, 0},  // borrow: C=0
        AluCase{Opcode::kSub, false, 0x0005, 0x0005, 0, 0x0000, 1, 1, 0, 0},
        AluCase{Opcode::kSub, false, 0x0001, 0x8000, 0, 0x7FFF, 1, 0, 0, 1},  // ovf
        AluCase{Opcode::kSub, true, 0x0001, 0x0000, 0, 0x00FF, 0, 0, 1, 0},
        AluCase{Opcode::kSubc, false, 0x0003, 0x0005, 1, 0x0002, 1, 0, 0, 0},
        AluCase{Opcode::kSubc, false, 0x0003, 0x0005, 0, 0x0001, 1, 0, 0, 0},
        AluCase{Opcode::kCmp, false, 0x0003, 0x0005, 0, 0x0000, 1, 0, 0, 0},
        AluCase{Opcode::kCmp, false, 0x0005, 0x0003, 0, 0x0000, 0, 0, 1, 0},
        AluCase{Opcode::kCmp, false, 0x8000, 0x7FFF, 0, 0x0000, 0, 0, 1, 1}));

INSTANTIATE_TEST_SUITE_P(
    Logic, AluSemantics,
    ::testing::Values(
        AluCase{Opcode::kAnd, false, 0xF0F0, 0xFF00, 0, 0xF000, 1, 0, 1, 0},
        AluCase{Opcode::kAnd, false, 0x0F0F, 0xF0F0, 0, 0x0000, 0, 1, 0, 0},  // C = !Z
        AluCase{Opcode::kBit, false, 0x0001, 0x0003, 0, 0x0000, 1, 0, 0, 0},
        AluCase{Opcode::kBit, false, 0x0004, 0x0003, 0, 0x0000, 0, 1, 0, 0},
        AluCase{Opcode::kXor, false, 0xFFFF, 0xFFFF, 0, 0x0000, 0, 1, 0, 1},  // both neg: V
        AluCase{Opcode::kXor, false, 0xAAAA, 0x5555, 0, 0xFFFF, 1, 0, 1, 0},
        AluCase{Opcode::kBis, false, 0x00F0, 0x000F, 1, 0x00FF, -1, -1, -1, -1},  // no flags
        AluCase{Opcode::kBic, false, 0x00F0, 0x00FF, 0, 0x000F, -1, -1, -1, -1},
        AluCase{Opcode::kAnd, true, 0x00FF, 0x1280, 0, 0x0080, 1, 0, 1, 0}));

INSTANTIATE_TEST_SUITE_P(
    Bcd, AluSemantics,
    ::testing::Values(
        AluCase{Opcode::kDadd, false, 0x0042, 0x0013, 0, 0x0055, 0, 0, 0, -1},
        AluCase{Opcode::kDadd, false, 0x0008, 0x0009, 0, 0x0017, 0, 0, 0, -1},
        AluCase{Opcode::kDadd, false, 0x9999, 0x0001, 0, 0x0000, 1, 1, 0, -1},
        AluCase{Opcode::kDadd, false, 0x0001, 0x0009, 1, 0x0011, 0, 0, 0, -1}));

// BIS/BIC/MOV must preserve flags exactly.
TEST(FlagPreservationTest, MovBisBicDontTouchSr) {
  for (Opcode op : {Opcode::kMov, Opcode::kBis, Opcode::kBic}) {
    Machine m;
    Instruction insn;
    insn.op = op;
    insn.src = RegOp(Reg::kR5);
    insn.dst = RegOp(Reg::kR4);
    auto words = Encode(insn);
    ASSERT_TRUE(words.ok());
    m.bus().PokeWord(0x4400, (*words)[0]);
    m.bus().PokeWord(kResetVector, 0x4400);
    m.cpu().Reset();
    const uint16_t all_flags = kSrCarry | kSrZero | kSrNegative | kSrOverflow;
    m.cpu().set_reg(Reg::kSr, all_flags);
    m.cpu().set_reg(Reg::kR5, 0x1234);
    m.cpu().set_reg(Reg::kR4, 0x00FF);
    ASSERT_EQ(m.cpu().Step(), StepResult::kOk);
    EXPECT_EQ(m.cpu().sr() & all_flags, all_flags) << OpcodeName(op);
  }
}

// ---------------------------------------------------------------------------
// Format II edge semantics
// ---------------------------------------------------------------------------

struct UnaryCase {
  Opcode op;
  bool byte;
  uint16_t in;
  bool carry_in;
  uint16_t expect;
  int c, z, n;
};

class UnarySemantics : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnarySemantics, MatchesArchitecture) {
  const UnaryCase& c = GetParam();
  Machine m;
  Instruction insn;
  insn.op = c.op;
  insn.byte = c.byte;
  insn.dst = RegOp(Reg::kR4);
  auto words = Encode(insn);
  ASSERT_TRUE(words.ok());
  m.bus().PokeWord(0x4400, (*words)[0]);
  m.bus().PokeWord(kResetVector, 0x4400);
  m.cpu().Reset();
  m.cpu().set_reg(Reg::kR4, c.in);
  m.cpu().set_reg(Reg::kSr, c.carry_in ? kSrCarry : 0);
  ASSERT_EQ(m.cpu().Step(), StepResult::kOk);
  EXPECT_EQ(m.cpu().reg(Reg::kR4), c.expect)
      << OpcodeName(c.op) << " in=" << HexWord(c.in);
  const uint16_t sr = m.cpu().sr();
  if (c.c >= 0) EXPECT_EQ((sr & kSrCarry) != 0, c.c == 1) << OpcodeName(c.op) << " C";
  if (c.z >= 0) EXPECT_EQ((sr & kSrZero) != 0, c.z == 1) << OpcodeName(c.op) << " Z";
  if (c.n >= 0) EXPECT_EQ((sr & kSrNegative) != 0, c.n == 1) << OpcodeName(c.op) << " N";
}

INSTANTIATE_TEST_SUITE_P(
    Shifts, UnarySemantics,
    ::testing::Values(
        //        op            byte   in     cin  expect  c  z  n
        UnaryCase{Opcode::kRra, false, 0x0005, 0, 0x0002, 1, 0, 0},
        UnaryCase{Opcode::kRra, false, 0x8000, 0, 0xC000, 0, 0, 1},  // keeps sign
        UnaryCase{Opcode::kRra, false, 0x0001, 0, 0x0000, 1, 1, 0},
        UnaryCase{Opcode::kRrc, false, 0x0000, 1, 0x8000, 0, 0, 1},  // C rotates in
        UnaryCase{Opcode::kRrc, false, 0x0001, 0, 0x0000, 1, 1, 0},
        UnaryCase{Opcode::kRrc, true, 0x0001, 1, 0x0080, 1, 0, 1},
        UnaryCase{Opcode::kSwpb, false, 0xABCD, 0, 0xCDAB, -1, -1, -1},
        UnaryCase{Opcode::kSxt, false, 0x0080, 0, 0xFF80, 1, 0, 1},
        UnaryCase{Opcode::kSxt, false, 0x007F, 0, 0x007F, 1, 0, 0},
        UnaryCase{Opcode::kSxt, false, 0x0000, 0, 0x0000, 0, 1, 0}));

// ---------------------------------------------------------------------------
// Byte operations on memory: only the addressed byte changes.
// ---------------------------------------------------------------------------

TEST(ByteMemoryTest, ByteStoreLeavesNeighborAlone) {
  Machine m;
  // mov.b r5, &0x1C01  (high byte of the word at 0x1C00)
  Instruction insn;
  insn.op = Opcode::kMov;
  insn.byte = true;
  insn.src = RegOp(Reg::kR5);
  insn.dst = AbsoluteOp(0x1C01);
  auto words = Encode(insn);
  ASSERT_TRUE(words.ok());
  m.bus().PokeWord(0x4400, (*words)[0]);
  m.bus().PokeWord(0x4402, (*words)[1]);
  m.bus().PokeWord(0x1C00, 0x1122);
  m.bus().PokeWord(kResetVector, 0x4400);
  m.cpu().Reset();
  m.cpu().set_reg(Reg::kR5, 0x00AB);
  ASSERT_EQ(m.cpu().Step(), StepResult::kOk);
  EXPECT_EQ(m.bus().PeekWord(0x1C00), 0xAB22);
}

TEST(ByteMemoryTest, ByteLoadFromOddAddressGetsHighByte) {
  Machine m;
  Instruction insn;
  insn.op = Opcode::kMov;
  insn.byte = true;
  insn.src = AbsoluteOp(0x1C01);
  insn.dst = RegOp(Reg::kR4);
  auto words = Encode(insn);
  ASSERT_TRUE(words.ok());
  m.bus().PokeWord(0x4400, (*words)[0]);
  m.bus().PokeWord(0x4402, (*words)[1]);
  m.bus().PokeWord(0x1C00, 0x7E55);
  m.bus().PokeWord(kResetVector, 0x4400);
  m.cpu().Reset();
  m.cpu().set_reg(Reg::kR4, 0xFFFF);
  ASSERT_EQ(m.cpu().Step(), StepResult::kOk);
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0x007E) << "byte into register clears the high byte";
}

// ---------------------------------------------------------------------------
// Assembler <-> disassembler round trip over an instruction corpus
// ---------------------------------------------------------------------------

TEST(RoundTripTest, DisassemblyReassemblesToIdenticalBytes) {
  // A corpus covering formats, widths, addressing modes, and CG constants.
  const char* kCorpus[] = {
      "mov r5, r6",        "add #2, r7",          "add #100, r7",
      "sub @r4, r5",       "subc @r9+, r10",      "cmp #-1, r11",
      "xor 4(r4), r12",    "and #8, r13",         "bit #4, r14",
      "bis #1, r15",       "bic #0, r5",          "dadd r6, r7",
      "mov.b @r4+, r5",    "add.b #1, r6",        "xor.b 2(r7), r8",
      "rra r5",            "rrc.b r6",            "swpb r7",
      "sxt r8",            "push #4",             "push r10",
      "call r11",          "reti",                "mov &0x1c00, r5",
      "mov r5, &0x1c02",   "mov 6(r4), 8(r4)",    "push 2(r4)",
  };
  for (const char* line : kCorpus) {
    auto obj1 = Assemble(std::string("  ") + line + "\n", "a.s");
    ASSERT_TRUE(obj1.ok()) << line << ": " << obj1.status().ToString();
    const auto& bytes1 = obj1->sections[0].bytes;
    // Decode the bytes.
    std::vector<uint16_t> words;
    for (size_t i = 0; i + 1 < bytes1.size(); i += 2) {
      words.push_back(static_cast<uint16_t>(bytes1[i] | (bytes1[i + 1] << 8)));
    }
    auto decoded = Decode(words);
    ASSERT_TRUE(decoded.ok()) << line;
    std::string text = Disassemble(*decoded, 0x4400);
    auto obj2 = Assemble("  " + text + "\n", "b.s");
    ASSERT_TRUE(obj2.ok()) << line << " -> " << text << ": " << obj2.status().ToString();
    EXPECT_EQ(obj2->sections[0].bytes, bytes1) << line << " -> " << text;
  }
}

}  // namespace
}  // namespace amulet
