// Tests for the shadow return-address stack (paper §5 / footnote 3
// extension): return addresses mirrored into InfoMem at function entry and
// verified at exit.
#include <gtest/gtest.h>

#include "src/aft/aft.h"
#include "src/common/strings.h"
#include "src/os/os.h"

namespace amulet {
namespace {

struct ShadowRig {
  Machine machine;
  std::unique_ptr<AmuletOs> os;
  Image image;

  void Build(const std::string& source, MemoryModel model,
             FaultPolicy policy = FaultPolicy::kLogOnly) {
    AftOptions options;
    options.model = model;
    options.shadow_return_stack = true;
    auto fw = BuildFirmware({{"shadowed", source}}, options);
    ASSERT_TRUE(fw.ok()) << fw.status().ToString();
    EXPECT_TRUE(fw->shadow_return_stack);
    image = fw->image;
    OsOptions os_options;
    os_options.fault_policy = policy;
    os = std::make_unique<AmuletOs>(&machine, std::move(*fw), os_options);
    ASSERT_TRUE(os->Boot().ok());
  }
};

constexpr char kNestedCalls[] = R"(
int result;
int level2(int v) { return v * 2; }
int level1(int v) { return level2(v) + 1; }
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) { result = level1(id); }
)";

class ShadowModels : public ::testing::TestWithParam<MemoryModel> {};

TEST_P(ShadowModels, WellBehavedProgramsRunNormally) {
  ShadowRig rig;
  rig.Build(kNestedCalls, GetParam());
  ASSERT_TRUE(rig.os->Deliver(0, EventType::kButton, 21).ok());
  EXPECT_TRUE(rig.os->faults().empty()) << MemoryModelName(GetParam());
  uint16_t result = rig.machine.bus().PeekWord(rig.image.SymbolOrZero("shadowed_g_result"));
  EXPECT_EQ(result, 43u);
  // Shadow stack balanced again after the dispatch.
  EXPECT_EQ(rig.machine.bus().PeekWord(kInfoMemStart), kInfoMemStart + 2);
}

TEST_P(ShadowModels, RepeatDispatchesStayBalanced) {
  ShadowRig rig;
  rig.Build(kNestedCalls, GetParam());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.os->Deliver(0, EventType::kButton, static_cast<uint16_t>(i)).ok());
  }
  EXPECT_TRUE(rig.os->faults().empty());
  EXPECT_EQ(rig.machine.bus().PeekWord(kInfoMemStart), kInfoMemStart + 2);
}

INSTANTIATE_TEST_SUITE_P(Models, ShadowModels,
                         ::testing::Values(MemoryModel::kNoIsolation,
                                           MemoryModel::kFeatureLimited, MemoryModel::kMpu,
                                           MemoryModel::kSoftwareOnly));

TEST(ShadowStackTest, CatchesInRegionReturnAddressOverwrite) {
  // The killer case for bounds-style ret checks: smash the return address
  // with a value *inside the app's own code region*. The MPU/SW ret checks
  // accept it (it is in bounds); the shadow comparison does not.
  // buf[4..5] overruns into the saved FP and return address of smash()'s
  // frame; we overwrite the return slot with the address of decoy().
  constexpr char kSmash[] = R"(
int hits;
int decoy_ran;
void decoy(void) { decoy_ran = 1; }
void smash(int target) {
  int buf[2];
  buf[0] = 0;
  int i = 3;                /* buf[3] == saved return address slot */
  buf[i] = target;
  hits++;
}
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) {
  void (*f)(void) = decoy;
  smash((int)f);
}
)";
  // Note: frame layout is [buf(4 bytes)][...vregs...][saved r4][ret addr];
  // compute the exact index empirically: sweep indices until the fault fires
  // (robust against codegen layout changes).
  for (int index = 2; index < 16; ++index) {
    std::string source = kSmash;
    size_t pos = source.find("int i = 3;");
    ASSERT_NE(pos, std::string::npos);
    source.replace(pos, 10, StrFormat("int i = %d;", index));

    AftOptions options;
    options.model = MemoryModel::kMpu;
    options.shadow_return_stack = true;
    auto fw = BuildFirmware({{"smash", source}}, options);
    ASSERT_TRUE(fw.ok()) << fw.status().ToString();
    Machine machine;
    OsOptions os_options;
    os_options.fault_policy = FaultPolicy::kLogOnly;
    AmuletOs os(&machine, std::move(*fw), os_options);
    ASSERT_TRUE(os.Boot().ok());
    auto result = os.Deliver(0, EventType::kButton, 0);
    ASSERT_TRUE(result.ok());
    uint16_t decoy_ran =
        machine.bus().PeekWord(os.firmware().image.SymbolOrZero("smash_g_decoy_ran"));
    EXPECT_EQ(decoy_ran, 0u) << "hijacked control flow executed at index " << index;
    if (!os.faults().empty() && os.faults().back().code == 3) {
      SUCCEED();
      return;  // the shadow check caught the overwrite
    }
  }
  FAIL() << "no index produced a shadow-stack fault";
}

TEST(ShadowStackTest, BoundsRetCheckMissesWhatShadowCatches) {
  // Same smash, MPU model WITHOUT the shadow stack: the corrupted return
  // address points into the app's own code region, so the one-sided bounds
  // check passes and the hijack succeeds — motivating the paper's §5 idea.
  constexpr char kSmashAt[] = R"(
int hits;
int decoy_ran;
void decoy(void) { decoy_ran = 1; }
void smash(int target, int i) {
  int buf[2];
  buf[0] = 0;
  buf[i] = target;
  hits++;
}
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) {
  void (*f)(void) = decoy;
  smash((int)f, id);
}
)";
  bool hijacked_without_shadow = false;
  for (int index = 2; index < 16 && !hijacked_without_shadow; ++index) {
    AftOptions options;
    options.model = MemoryModel::kMpu;
    auto fw = BuildFirmware({{"smash", kSmashAt}}, options);
    ASSERT_TRUE(fw.ok());
    Machine machine;
    OsOptions os_options;
    os_options.fault_policy = FaultPolicy::kLogOnly;
    AmuletOs os(&machine, std::move(*fw), os_options);
    ASSERT_TRUE(os.Boot().ok());
    auto result = os.Deliver(0, EventType::kButton, static_cast<uint16_t>(index));
    if (!result.ok()) {
      continue;  // some indices crash in other ways; that is fine
    }
    uint16_t decoy_ran =
        machine.bus().PeekWord(os.firmware().image.SymbolOrZero("smash_g_decoy_ran"));
    if (decoy_ran == 1) {
      hijacked_without_shadow = true;
    }
  }
  EXPECT_TRUE(hijacked_without_shadow)
      << "expected the in-region hijack to slip past the bounds-style ret check";
}

TEST(ShadowStackTest, ShadowPointerInitializedByImage) {
  AftOptions options;
  options.model = MemoryModel::kSoftwareOnly;
  options.shadow_return_stack = true;
  auto fw = BuildFirmware({{"s", "void on_init(void) { }"}}, options);
  ASSERT_TRUE(fw.ok());
  EXPECT_EQ(fw->image.SymbolOrZero("__shadow_sp"), kInfoMemStart);
  Machine machine;
  AmuletOs os(&machine, std::move(*fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  EXPECT_EQ(machine.bus().PeekWord(kInfoMemStart), kInfoMemStart + 2);
}

TEST(ShadowStackTest, MpuGrantsInfoMemAccessOnlyWhenEnabled) {
  AftOptions plain;
  plain.model = MemoryModel::kMpu;
  auto fw_plain = BuildFirmware({{"s", "void on_init(void) { }"}}, plain);
  ASSERT_TRUE(fw_plain.ok());
  EXPECT_EQ(fw_plain->apps[0].mpu_sam & 0xF000, 0) << "InfoMem: no access by default";
  AftOptions shadow = plain;
  shadow.shadow_return_stack = true;
  auto fw_shadow = BuildFirmware({{"s", "void on_init(void) { }"}}, shadow);
  ASSERT_TRUE(fw_shadow.ok());
  EXPECT_EQ(fw_shadow->apps[0].mpu_sam & 0xF000, 0x3000) << "InfoMem RW for the shadow";
}

TEST(ShadowStackTest, ShadowReplacesBoundsRetChecks) {
  AftOptions options;
  options.model = MemoryModel::kSoftwareOnly;
  options.shadow_return_stack = true;
  // Build succeeds and no __bnd_*_code_hi epilogue compare is emitted: the
  // firmware's symbol table still has bounds (data checks need them), but a
  // simple behavioural check suffices: deep call chains still work.
  auto fw = BuildFirmware({{"s", kNestedCalls}}, options);
  ASSERT_TRUE(fw.ok());
  EXPECT_EQ(fw->apps[0].checks.ret_checks, 0);
}

}  // namespace
}  // namespace amulet
