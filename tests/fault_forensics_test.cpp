// Fault-forensics coverage: structured FaultRecord parity across every
// memory model and both simulator cores, FaultLedger merge algebra and
// digest determinism, the v4 checkpoint ledger section, and ledger identity
// across fleet thread counts and kill/resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/aft/aft.h"
#include "src/fleet/checkpoint.h"
#include "src/fleet/fault_ledger.h"
#include "src/fleet/fleet.h"
#include "src/mcu/machine.h"
#include "src/os/os.h"
#include "src/scope/flight_recorder.h"

namespace amulet {
namespace {

// One out-of-bounds array store, index supplied at runtime (the compiler
// rejects constant OOB indexes outright). The same app compiles under all
// four models, including FeatureLimited — no pointers, no recursion.
constexpr char kOobApp[] = R"(
int buf[4];
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) { buf[id] = 16705; }
)";

// The write target: above every app region, so the MPU model reaches the
// hardware fault (the compiler's MPU-model lower-bound check only guards
// below) — the same address the fault_injection example uses for its
// "wild write ABOVE the app" scenario.
constexpr uint16_t kTarget = 0xF000;

struct OobRun {
  Machine machine;
  std::unique_ptr<AmuletOs> os;
  FlightRecorder flight;
  uint16_t index = 0;

  void Fire(MemoryModel model, bool predecode) {
    AftOptions options;
    options.model = model;
    auto fw = BuildFirmware({{"oob", kOobApp}}, options);
    ASSERT_TRUE(fw.ok()) << fw.status().ToString();
    const uint16_t buf_addr = fw->image.SymbolOrZero("oob_g_buf");
    ASSERT_NE(buf_addr, 0u);
    ASSERT_EQ(buf_addr % 2, 0u);
    machine.cpu().set_predecode(predecode);
    os = std::make_unique<AmuletOs>(&machine, std::move(*fw), OsOptions{});
    os->AttachFlightRecorder(&flight);
    ASSERT_TRUE(os->Boot().ok());
    // buf[index] resolves to exactly kTarget; under FeatureLimited the
    // index is simply (far) out of bounds.
    index = static_cast<uint16_t>(((kTarget - buf_addr) & 0xFFFF) / 2);
    ASSERT_GE(index, 4u);
    ASSERT_TRUE(os->Deliver(0, EventType::kButton, index).ok());
  }
};

void ExpectRecordsEqual(const FaultRecord& fast, const FaultRecord& slow) {
  EXPECT_EQ(fast.app_index, slow.app_index);
  EXPECT_EQ(fast.from_mpu, slow.from_mpu);
  EXPECT_EQ(fast.code, slow.code);
  EXPECT_EQ(fast.addr, slow.addr);
  EXPECT_EQ(fast.at_cycles, slow.at_cycles);
  EXPECT_EQ(fast.description, slow.description);
  EXPECT_EQ(fast.kind, slow.kind);
  EXPECT_EQ(fast.pc, slow.pc);
  EXPECT_EQ(fast.scope, slow.scope);
  EXPECT_EQ(fast.regs, slow.regs);
  EXPECT_EQ(fast.call_stack, slow.call_stack);
  EXPECT_EQ(fast.recent_pcs, slow.recent_pcs);
  ASSERT_EQ(fast.flight.size(), slow.flight.size());
  for (size_t i = 0; i < fast.flight.size(); ++i) {
    EXPECT_TRUE(fast.flight[i] == slow.flight[i]) << "flight event " << i;
  }
}

// The same injected OOB write yields an equivalent structured record on the
// predecoded fast core and the reference interpreter, under every isolating
// model — and the model determines the fault kind.
TEST(FaultParityTest, OobWriteEquivalentAcrossCoresAndModels) {
  struct Expectation {
    MemoryModel model;
    FaultKind kind;
    bool from_mpu;
  };
  const Expectation kCases[] = {
      {MemoryModel::kFeatureLimited, FaultKind::kCheckIndex, false},
      {MemoryModel::kSoftwareOnly, FaultKind::kCheckMemory, false},
      {MemoryModel::kMpu, FaultKind::kMpuViolation, true},
  };
  for (const Expectation& expect : kCases) {
    SCOPED_TRACE(std::string(MemoryModelName(expect.model)));
    OobRun fast;
    fast.Fire(expect.model, /*predecode=*/true);
    OobRun slow;
    slow.Fire(expect.model, /*predecode=*/false);
    ASSERT_EQ(fast.os->faults().size(), 1u);
    ASSERT_EQ(slow.os->faults().size(), 1u);
    const FaultRecord& record = fast.os->faults()[0];
    EXPECT_EQ(record.kind, expect.kind);
    EXPECT_EQ(record.from_mpu, expect.from_mpu);
    if (expect.kind != FaultKind::kCheckIndex) {
      EXPECT_EQ(record.addr, kTarget);
    }
    // The signature pc points at app code, not the check stub that fired.
    EXPECT_NE(record.pc, 0u);
    EXPECT_EQ(record.scope, RegionTag::kApp);
    EXPECT_FALSE(record.recent_pcs.empty());
#ifdef AMULET_SCOPE_ENABLED
    EXPECT_FALSE(record.flight.empty());
#endif
    ExpectRecordsEqual(record, slow.os->faults()[0]);

    // The rendered dump names the classification.
    const std::string dump = RenderFaultForensics(record, fast.machine.bus());
    EXPECT_NE(dump.find(FaultKindName(record.kind)), std::string::npos) << dump;
  }
}

// NoIsolation is the control: the same write silently corrupts memory.
TEST(FaultParityTest, NoIsolationCorruptsSilently) {
  for (bool predecode : {true, false}) {
    OobRun run;
    run.Fire(MemoryModel::kNoIsolation, predecode);
    EXPECT_TRUE(run.os->faults().empty());
    EXPECT_EQ(run.machine.bus().PeekWord(kTarget), 16705u);
  }
}

// ---------------------------------------------------------------------------
// FaultLedger algebra

FaultRecord SyntheticRecord(FaultKind kind, uint16_t pc, uint16_t addr,
                            uint64_t at_cycles) {
  FaultRecord record;
  record.app_index = 0;
  record.kind = kind;
  record.pc = pc;
  record.scope = RegionTag::kApp;
  record.addr = addr;
  record.at_cycles = at_cycles;
  record.code = static_cast<uint16_t>(kind);
  record.description = "synthetic";
  record.call_stack = {pc, static_cast<uint16_t>(pc + 8)};
  return record;
}

TEST(FaultLedgerTest, RecordBucketsBySignature) {
  FaultLedger ledger;
  ledger.Record(SyntheticRecord(FaultKind::kCheckMemory, 0x8000, 0x1C00, 500), 3, "a");
  ledger.Record(SyntheticRecord(FaultKind::kCheckMemory, 0x8000, 0x1C02, 900), 3, "a");
  ledger.Record(SyntheticRecord(FaultKind::kMpuViolation, 0x8100, 0xF000, 100), 3, "a");
  EXPECT_EQ(ledger.bucket_count(), 2u);
  EXPECT_EQ(ledger.total_faults(), 3u);
  const std::vector<const FaultBucket*> top = ledger.TopK(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0]->count, 2u);
  EXPECT_EQ(top[0]->kind, FaultKind::kCheckMemory);
  // The exemplar within one device is the earliest record.
  EXPECT_EQ(top[0]->addr, 0x1C00u);
  EXPECT_EQ(top[0]->at_cycles, 500u);
  // A per-device ledger reports one device per bucket.
  EXPECT_EQ(top[0]->devices, 1u);
  EXPECT_EQ(top[1]->devices, 1u);
}

TEST(FaultLedgerTest, MergeIsOrderIndependent) {
  // Three per-device ledgers sharing one bucket signature plus a unique
  // bucket each; merged in any order the digest must be byte-identical and
  // the exemplar must follow the lowest device id.
  auto device_ledger = [](int device_id) {
    FaultLedger ledger;
    ledger.Record(SyntheticRecord(FaultKind::kCheckMemory, 0x8000,
                                  static_cast<uint16_t>(0x1C00 + device_id),
                                  1000 + static_cast<uint64_t>(device_id)),
                  device_id, "shared");
    ledger.Record(SyntheticRecord(FaultKind::kMpuViolation,
                                  static_cast<uint16_t>(0x9000 + 2 * device_id), 0xF000,
                                  77),
                  device_id, "unique");
    return ledger;
  };

  FaultLedger forward;
  for (int id : {0, 1, 2}) {
    forward.Merge(device_ledger(id));
  }
  FaultLedger backward;
  for (int id : {2, 1, 0}) {
    backward.Merge(device_ledger(id));
  }
  FaultLedger nested;  // (2 + 0) + 1, merged pairwise
  FaultLedger pair;
  pair.Merge(device_ledger(2));
  pair.Merge(device_ledger(0));
  nested.Merge(device_ledger(1));
  nested.Merge(pair);

  const std::string digest = forward.DigestText();
  EXPECT_FALSE(digest.empty());
  EXPECT_EQ(backward.DigestText(), digest);
  EXPECT_EQ(nested.DigestText(), digest);
  EXPECT_EQ(forward.ToJsonl(), backward.ToJsonl());

  EXPECT_EQ(forward.bucket_count(), 4u);
  EXPECT_EQ(forward.total_faults(), 6u);
  const std::vector<const FaultBucket*> top = forward.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0]->count, 3u);
  EXPECT_EQ(top[0]->devices, 3u) << "distinct devices, not records";
  EXPECT_EQ(top[0]->exemplar_device, 0);
  EXPECT_EQ(top[0]->addr, 0x1C00u) << "exemplar payload follows device 0";
}

TEST(FaultLedgerTest, TriageReportNamesSignatureAndExemplar) {
  FaultLedger ledger;
  ledger.Record(SyntheticRecord(FaultKind::kCheckMemory, 0x8000, 0x1C00, 500), 4,
                "pedometer");
  const std::string triage = ledger.RenderTriage(5);
  EXPECT_NE(triage.find("1 bucket(s)"), std::string::npos) << triage;
  EXPECT_NE(triage.find("check-memory"), std::string::npos) << triage;
  EXPECT_NE(triage.find("0x8000"), std::string::npos) << triage;
  EXPECT_NE(triage.find("device 4"), std::string::npos) << triage;
}

// ---------------------------------------------------------------------------
// Checkpoint v4 ledger section

TEST(FaultLedgerTest, CheckpointRoundTripPreservesLedger) {
  FleetConfig config;
  config.device_count = 4;
  config.apps = {"pedometer"};
  FleetCheckpoint cp;
  cp.config_hash = FleetConfigHash(config, 0xF00Dull);
  cp.config_text = FleetConfigCanonical(config, 0xF00Dull);
  Machine machine;
  cp.template_snapshot = CaptureSnapshot(machine);
  cp.device_count = 4;
  cp.completed = {true, true, false, false};
  DeviceStats d0;
  d0.device_id = 0;
  DeviceStats d1;
  d1.device_id = 1;
  cp.devices = {d0, d1};
  FaultRecord record = SyntheticRecord(FaultKind::kMpuViolation, 0x9000, 0xF000, 4242);
  record.flight.push_back({/*cycles=*/4200, /*a=*/0x9000, /*b=*/0x4141,
                           FlightEventKind::kStore});
  cp.faults.Record(record, 1, "crasher");

  const std::vector<uint8_t> bytes = EncodeFleetCheckpoint(cp);
  auto decoded = DecodeFleetCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->faults.DigestText(), cp.faults.DigestText());
  EXPECT_EQ(decoded->faults.ToJsonl(), cp.faults.ToJsonl());
  const std::vector<const FaultBucket*> top = decoded->faults.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0]->app_name, "crasher");
  EXPECT_EQ(top[0]->call_stack, record.call_stack);
  ASSERT_EQ(top[0]->flight.size(), 1u);
  EXPECT_TRUE(top[0]->flight[0] == record.flight[0]);
}

// ---------------------------------------------------------------------------
// Fleet-level ledger determinism

FleetConfig CrashyFleet(int jobs) {
  FleetConfig config;
  config.device_count = 8;
  config.apps = {"pedometer", "crasher"};
  config.model = MemoryModel::kMpu;
  config.fleet_seed = 0xF1EE7;
  config.sim_ms = 500;
  config.jobs = jobs;
  return config;
}

TEST(FleetLedgerTest, LedgerIdenticalAcrossThreadCountsAndRecorderModes) {
  auto serial = RunFleet(CrashyFleet(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_FALSE(serial->faults.empty());
  // The crasher's wild timer write faults on every device.
  uint64_t bucket_devices = 0;
  for (const FaultBucket* bucket : serial->faults.TopK(1)) {
    bucket_devices = bucket->devices;
  }
  EXPECT_EQ(bucket_devices, 8u);
  const std::string digest = FleetDigest(*serial);
  EXPECT_NE(digest.find("ledger:"), std::string::npos);

  auto parallel = RunFleet(CrashyFleet(4));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(FleetDigest(*parallel), digest);
  EXPECT_EQ(parallel->faults.DigestText(), serial->faults.DigestText());

  // The recorder is digest-neutral: disabling it only empties the flight
  // tails, which the digest deliberately excludes.
  FleetConfig no_recorder = CrashyFleet(2);
  no_recorder.flight_recorder = false;
  auto bare = RunFleet(no_recorder);
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  EXPECT_EQ(FleetDigest(*bare), digest);

  // The rendered report carries the triage table.
  const std::string text = RenderFleetReport(*serial);
  EXPECT_NE(text.find("fault ledger:"), std::string::npos) << text;
}

TEST(FleetLedgerTest, LedgerSurvivesKillAndResume) {
  auto baseline = RunFleet(CrashyFleet(1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string digest = FleetDigest(*baseline);

  const std::string path = "fleet_ckpt_ledger_test.bin";
  std::remove(path.c_str());
  FleetConfig interrupted = CrashyFleet(1);
  interrupted.checkpoint_path = path;
  interrupted.checkpoint_every_devices = 1;
  interrupted.abort_after_devices = 3;
  ASSERT_EQ(RunFleet(interrupted).status().code(), StatusCode::kCancelled);

  // The checkpoint on disk already holds the completed devices' buckets.
  auto cp = ReadFleetCheckpoint(path);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_FALSE(cp->faults.empty());

  FleetConfig resume_config = CrashyFleet(4);
  resume_config.checkpoint_path = path;
  auto resumed = ResumeFleet(resume_config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->resumed_devices, 3);
  EXPECT_EQ(FleetDigest(*resumed), digest);
  EXPECT_EQ(resumed->faults.DigestText(), baseline->faults.DigestText());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amulet
