#include <gtest/gtest.h>

#include "src/mcu/machine.h"
#include "src/mcu/memory_map.h"
#include "src/mcu/trace.h"
#include "tests/sim_test_util.h"

namespace amulet {
namespace {

// Stop helper used by nearly every program below.
constexpr char kStop[] =
    "  mov #4, &0x0710\n";  // kHostIoStop with kStopMainDone

// ---------------------------------------------------------------------------
// CPU arithmetic / flags
// ---------------------------------------------------------------------------

TEST(CpuTest, ResetLoadsPcFromVector) {
  Machine m;
  m.bus().PokeWord(kResetVector, 0x4400);
  m.cpu().Reset();
  EXPECT_EQ(m.cpu().pc(), 0x4400);
}

TEST(CpuTest, MovAndAdd) {
  Machine m;
  auto out = RunAsm(&m,
                    "start:\n"
                    "  mov #100, r4\n"
                    "  mov #23, r5\n"
                    "  add r5, r4\n" +
                        std::string(kStop));
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 123);
}

TEST(CpuTest, AddSetsCarryAndOverflow) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0xFFFF, r4\n"
         "  add #1, r4\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0);
  EXPECT_TRUE(m.cpu().sr() & kSrCarry);
  EXPECT_TRUE(m.cpu().sr() & kSrZero);
  EXPECT_FALSE(m.cpu().sr() & kSrOverflow);
}

TEST(CpuTest, SignedOverflow) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0x7FFF, r4\n"
         "  add #1, r4\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0x8000);
  EXPECT_TRUE(m.cpu().sr() & kSrOverflow);
  EXPECT_TRUE(m.cpu().sr() & kSrNegative);
}

TEST(CpuTest, SubAndCarryAsNoBorrow) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #5, r4\n"
         "  sub #3, r4\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 2);
  EXPECT_TRUE(m.cpu().sr() & kSrCarry) << "no borrow -> C set";
}

TEST(CpuTest, SubBorrowClearsCarry) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #3, r4\n"
         "  sub #5, r4\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0xFFFE);
  EXPECT_FALSE(m.cpu().sr() & kSrCarry);
  EXPECT_TRUE(m.cpu().sr() & kSrNegative);
}

TEST(CpuTest, CmpDoesNotWrite) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #7, r4\n"
         "  cmp #7, r4\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 7);
  EXPECT_TRUE(m.cpu().sr() & kSrZero);
}

TEST(CpuTest, ByteOpClearsHighByteOfRegister) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0x1234, r4\n"
         "  mov.b #0x56, r4\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0x0056);
}

TEST(CpuTest, XorAndBitFlags) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0xFF00, r4\n"
         "  xor #0x00FF, r4\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0xFFFF);
  EXPECT_TRUE(m.cpu().sr() & kSrCarry);  // C = not Z
  EXPECT_TRUE(m.cpu().sr() & kSrNegative);
}

TEST(CpuTest, DaddBcdArithmetic) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  clrc\n"
         "  mov #0x0199, r4\n"
         "  mov #0x0001, r5\n"
         "  dadd r5, r4\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0x0200) << "BCD 199 + 1 = 200";
}

TEST(CpuTest, RraRrcShifts) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0x8003, r4\n"
         "  rra r4\n"  // arithmetic: keeps sign, C = old bit0
         "  mov #0x0001, r5\n"
         "  clrc\n"
         "  rrc r5\n" +  // C<-1, result 0
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0xC001);
  EXPECT_EQ(m.cpu().reg(Reg::kR5), 0x0000);
  EXPECT_TRUE(m.cpu().sr() & kSrCarry);
}

TEST(CpuTest, SwpbAndSxt) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0x1234, r4\n"
         "  swpb r4\n"
         "  mov #0x0080, r5\n"
         "  sxt r5\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0x3412);
  EXPECT_EQ(m.cpu().reg(Reg::kR5), 0xFF80);
}

// ---------------------------------------------------------------------------
// Control flow, stack, addressing
// ---------------------------------------------------------------------------

TEST(CpuTest, CallAndRet) {
  Machine m;
  auto out = RunAsm(&m,
                    "start:\n"
                    "  mov #0x2400, sp\n"
                    "  call #func\n"
                    "  mov #1, r10\n" +
                        std::string(kStop) +
                        "func:\n"
                        "  mov #42, r4\n"
                        "  ret\n");
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 42);
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 1);
  EXPECT_EQ(m.cpu().sp(), 0x2400) << "stack balanced";
}

TEST(CpuTest, PushPop) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0x2400, sp\n"
         "  mov #0xBEEF, r4\n"
         "  push r4\n"
         "  clr r4\n"
         "  pop r5\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR5), 0xBEEF);
  EXPECT_EQ(m.cpu().sp(), 0x2400);
}

TEST(CpuTest, ConditionalJumps) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #5, r4\n"
         "  cmp #5, r4\n"
         "  jeq equal\n"
         "  mov #0, r10\n"
         "  jmp done\n"
         "equal:\n"
         "  mov #1, r10\n"
         "done:\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 1);
}

TEST(CpuTest, SignedComparisonJlJge) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0xFFFE, r4\n"  // -2
         "  cmp #1, r4\n"       // -2 < 1 signed
         "  jl less\n"
         "  mov #0, r10\n"
         "  jmp done\n"
         "less:\n"
         "  mov #1, r10\n"
         "done:\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 1);
}

TEST(CpuTest, UnsignedComparisonJloJhs) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0xFFFE, r4\n"  // 65534 unsigned
         "  cmp #1, r4\n"       // 65534 >= 1 unsigned
         "  jhs higher\n"
         "  mov #0, r10\n"
         "  jmp done\n"
         "higher:\n"
         "  mov #1, r10\n"
         "done:\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 1);
}

TEST(CpuTest, LoopWithAutoIncrement) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #table, r4\n"
         "  clr r5\n"
         "  mov #4, r6\n"
         "loop:\n"
         "  add @r4+, r5\n"
         "  dec r6\n"
         "  jnz loop\n" +
             std::string(kStop) +
             ".data\n"
             "table:\n"
             "  .word 10, 20, 30, 40\n");
  EXPECT_EQ(m.cpu().reg(Reg::kR5), 100);
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0x7000 + 8);
}

TEST(CpuTest, ByteAutoIncrementAdvancesByOne) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #bytes, r4\n"
         "  clr r5\n"
         "  mov.b @r4+, r5\n"
         "  mov.b @r4+, r6\n" +
             std::string(kStop) +
             ".data\n"
             "bytes:\n"
             "  .byte 7, 9\n");
  EXPECT_EQ(m.cpu().reg(Reg::kR5), 7);
  EXPECT_EQ(m.cpu().reg(Reg::kR6), 9);
}

TEST(CpuTest, IndexedAddressing) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #table, r4\n"
         "  mov 2(r4), r5\n"
         "  mov #0x55AA, 4(r4)\n" +
             std::string(kStop) +
             ".data\n"
             "table:\n"
             "  .word 1, 2, 3\n");
  EXPECT_EQ(m.cpu().reg(Reg::kR5), 2);
  EXPECT_EQ(m.bus().PeekWord(0x7004), 0x55AA);
}

TEST(CpuTest, AbsoluteAddressing) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0x1234, &0x1C00\n"
         "  mov &0x1C00, r5\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR5), 0x1234);
  EXPECT_EQ(m.bus().PeekWord(0x1C00), 0x1234);
}

TEST(CpuTest, SymbolicAddressing) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov var, r5\n"
         "  mov #99, var\n" +
             std::string(kStop) +
             ".data\n"
             "var:\n"
             "  .word 55\n");
  EXPECT_EQ(m.cpu().reg(Reg::kR5), 55);
  EXPECT_EQ(m.bus().PeekWord(0x7000), 99);
}

// ---------------------------------------------------------------------------
// Cycle accounting
// ---------------------------------------------------------------------------

TEST(CpuTest, CycleCountMatchesTable) {
  Machine m;
  AssembleAndLoad(&m,
                  "start:\n"
                  "  mov #100, r4\n"   // #N->Rm: 2
                  "  add r4, r5\n"     // Rn->Rm: 1
                  "  mov r5, &0x1C00\n"  // Rn->&EDE: 4
                  "  jmp next\n"       // 2
                  "next:\n" +
                      std::string(kStop));
  // Run exactly 4 instructions.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(m.cpu().Step(), StepResult::kOk);
  }
  EXPECT_EQ(m.cpu().cycle_count(), 2u + 1 + 4 + 2);
}

TEST(CpuTest, FramWaitStatesAddPenalty) {
  Machine m0;
  AssembleAndLoad(&m0,
                  "start:\n"
                  "  mov #1, r4\n" +
                      std::string(kStop));
  m0.cpu().Step();
  const uint64_t no_wait = m0.cpu().cycle_count();

  Machine m1;
  m1.bus().set_fram_wait_states(1);
  AssembleAndLoad(&m1,
                  "start:\n"
                  "  mov #1, r4\n" +
                      std::string(kStop));
  m1.cpu().Step();
  // mov #1, r4 with CG: single word fetched from FRAM -> +1 penalty.
  EXPECT_EQ(m1.cpu().cycle_count(), no_wait + 1);
}

// ---------------------------------------------------------------------------
// Interrupts
// ---------------------------------------------------------------------------

TEST(CpuTest, TimerInterruptAndReti) {
  Machine m;
  RunAsm(&m,
         ".equ TACTL, 0x0340\n"
         ".equ TACCR0, 0x0346\n"
         "start:\n"
         "  mov #0x2400, sp\n"
         "  mov #isr, &0xFFF0\n"    // timer vector
         "  mov #200, &TACCR0\n"
         "  mov #1, &TACTL\n"       // IE
         "  eint\n"
         "wait:\n"
         "  cmp #1, r10\n"
         "  jnz wait\n" +
             std::string(kStop) +
             "isr:\n"
             "  mov #1, r10\n"
             "  mov #2, &TACTL\n"   // clear IFG
             "  reti\n",
         50000);
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 1);
}

TEST(CpuTest, InterruptIgnoredWithoutGie) {
  Machine m;
  auto out = RunAsm(&m,
                    ".equ TACTL, 0x0340\n"
                    ".equ TACCR0, 0x0346\n"
                    "start:\n"
                    "  mov #0x2400, sp\n"
                    "  mov #isr, &0xFFF0\n"
                    "  mov #50, &TACCR0\n"
                    "  mov #1, &TACTL\n"
                    "  mov #300, r6\n"  // spin well past the compare point
                    "spin:\n"
                    "  dec r6\n"
                    "  jnz spin\n" +
                        std::string(kStop) +
                        "isr:\n"
                        "  mov #1, r10\n"
                        "  reti\n",
                    50000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 0) << "ISR must not run with GIE clear";
}

TEST(CpuTest, CpuOffIdlesUntilInterrupt) {
  Machine m;
  RunAsm(&m,
         ".equ TACTL, 0x0340\n"
         ".equ TACCR0, 0x0346\n"
         "start:\n"
         "  mov #0x2400, sp\n"
         "  mov #isr, &0xFFF0\n"
         "  mov #500, &TACCR0\n"
         "  mov #1, &TACTL\n"
         "  bis #0x18, sr\n"  // CPUOFF | GIE
         "  mov #7, r11\n"    // runs only after wake-up
         + std::string(kStop) +
             "isr:\n"
             "  mov #1, r10\n"
             "  mov #2, &TACTL\n"
             "  bic #0x10, 0(sp)\n"  // clear CPUOFF in saved SR
             "  reti\n",
         50000);
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 1);
  EXPECT_EQ(m.cpu().reg(Reg::kR11), 7);
  EXPECT_GT(m.cpu().cycle_count(), 400u) << "should have idled until the compare fired";
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

TEST(CpuTest, UnmappedAccessHalts) {
  Machine m;
  auto out = RunAsm(&m,
                    "start:\n"
                    "  mov &0x3000, r4\n" +  // hole between SRAM and FRAM
                        std::string(kStop));
  EXPECT_EQ(out.result, StepResult::kHalted);
  EXPECT_EQ(m.cpu().halt_reason(), HaltReason::kBusFault);
}

TEST(CpuTest, WritesToPcClearBitZero) {
  // Architectural behaviour: the PC's bit 0 always reads 0, so a "jump to an
  // odd address" silently lands on the preceding even address.
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #target + 1, r4\n"
         "  mov r4, pc\n"
         "  mov #0, r10\n" +  // skipped
             std::string(kStop) +
             "target:\n"
             "  mov #1, r10\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 1);
}

TEST(CpuTest, WildJumpIntoUnmappedMemoryHalts) {
  Machine m;
  auto out = RunAsm(&m,
                    "start:\n"
                    "  mov #0x3000, r4\n"  // hole between SRAM and FRAM
                    "  mov r4, pc\n" +
                        std::string(kStop));
  EXPECT_EQ(out.result, StepResult::kHalted);
  EXPECT_EQ(m.cpu().halt_reason(), HaltReason::kBusFault);
}

TEST(CpuTest, WriteToBslRomHalts) {
  Machine m;
  auto out = RunAsm(&m,
                    "start:\n"
                    "  mov #1, &0x1000\n" +
                        std::string(kStop));
  EXPECT_EQ(out.result, StepResult::kHalted);
  EXPECT_EQ(m.cpu().halt_reason(), HaltReason::kBusFault);
}

// ---------------------------------------------------------------------------
// MPU
// ---------------------------------------------------------------------------

constexpr char kMpuRegs[] =
    ".equ MPUCTL0, 0x05A0\n"
    ".equ MPUCTL1, 0x05A2\n"
    ".equ MPUSEGB2, 0x05A4\n"
    ".equ MPUSEGB1, 0x05A6\n"
    ".equ MPUSAM, 0x05A8\n";

TEST(MpuTest, DisabledMpuAllowsEverything) {
  Machine m;
  auto out = RunAsm(&m,
                    "start:\n"
                    "  mov #0xAAAA, &0x9000\n" +
                        std::string(kStop));
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(m.bus().PeekWord(0x9000), 0xAAAA);
}

TEST(MpuTest, WriteToExecuteOnlySegmentFaultsViaNmi) {
  Machine m;
  // Seg1 = [0x4400, 0x8000) X only; Seg2 = [0x8000, 0xA000) RW;
  // Seg3 = rest no access. NMI handler records and stops.
  auto out = RunAsm(&m,
                    std::string(kMpuRegs) +
                        "start:\n"
                        "  mov #0x2400, sp\n"
                        "  mov #nmi, &0xFFFC\n"
                        "  mov #0x0800, &MPUSEGB1\n"
                        "  mov #0x0A00, &MPUSEGB2\n"
                        "  mov #0x0034, &MPUSAM\n"  // seg1 X, seg2 RW, seg3 none
                        "  mov #0xA501, &MPUCTL0\n"  // password | ENA
                        "  mov #0xBEEF, &0x9000\n"   // allowed: seg2 RW
                        "  mov #0xDEAD, &0x4500\n"   // violation: write into X-only
                        "  mov #9, r11\n"            // must NOT run before NMI
                        + std::string(kStop) +
                        "nmi:\n"
                        "  mov #1, r10\n"
                        "  mov #3, &0x0710\n",  // kStopMpuFault
                    50000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(out.stop_code, 3);
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 1);
  EXPECT_EQ(m.bus().PeekWord(0x9000), 0xBEEF) << "permitted write went through";
  EXPECT_NE(m.bus().PeekWord(0x4500), 0xDEAD) << "violating write must be blocked";
  EXPECT_TRUE(m.mpu().violation_flags() & kMpuSeg1Ifg);
  EXPECT_EQ(m.mpu().last_violation_addr(), 0x4500);
}

TEST(MpuTest, ReadFromNoAccessSegmentFaults) {
  Machine m;
  auto out = RunAsm(&m,
                    std::string(kMpuRegs) +
                        "start:\n"
                        "  mov #0x2400, sp\n"
                        "  mov #nmi, &0xFFFC\n"
                        "  mov #0x0800, &MPUSEGB1\n"
                        "  mov #0x0A00, &MPUSEGB2\n"
                        "  mov #0x0034, &MPUSAM\n"
                        "  mov #0xA501, &MPUCTL0\n"
                        "  mov &0xB000, r4\n"  // seg3: no access
                        + std::string(kStop) +
                        "nmi:\n"
                        "  mov #3, &0x0710\n",
                    50000);
  EXPECT_EQ(out.stop_code, 3);
  EXPECT_TRUE(m.mpu().violation_flags() & kMpuSeg3Ifg);
}

TEST(MpuTest, ExecuteFromRwDataSegmentFaults) {
  Machine m;
  auto out = RunAsm(&m,
                    std::string(kMpuRegs) +
                        "start:\n"
                        "  mov #0x2400, sp\n"
                        "  mov #nmi, &0xFFFC\n"
                        "  mov #0x0800, &MPUSEGB1\n"
                        "  mov #0x0A00, &MPUSEGB2\n"
                        "  mov #0x0034, &MPUSAM\n"
                        "  mov #0xA501, &MPUCTL0\n"
                        "  br #0x9000\n"  // jump into the RW (non-X) segment
                        "nmi:\n"
                        "  mov #3, &0x0710\n",
                    50000);
  EXPECT_EQ(out.stop_code, 3);
  EXPECT_TRUE(m.mpu().violation_flags() & kMpuSeg2Ifg);
}

TEST(MpuTest, SramIsNeverProtected) {
  // The paper's complaint: the MPU cannot protect SRAM.
  Machine m;
  auto out = RunAsm(&m,
                    std::string(kMpuRegs) +
                        "start:\n"
                        "  mov #0x0800, &MPUSEGB1\n"
                        "  mov #0x0A00, &MPUSEGB2\n"
                        "  mov #0x0000, &MPUSAM\n"  // no access anywhere in FRAM... except
                        "  mov #0xA501, &MPUCTL0\n"
                        "  mov #0x7777, &0x1C10\n"  // SRAM write sails through
                        + std::string(kStop),
                    50000);
  // Note: instruction fetch itself is from seg1, which has no X right here,
  // so the program would fault on fetch. Give seg1 X back:
  (void)out;
  Machine m2;
  auto out2 = RunAsm(&m2,
                     std::string(kMpuRegs) +
                         "start:\n"
                         "  mov #0x0800, &MPUSEGB1\n"
                         "  mov #0x0A00, &MPUSEGB2\n"
                         "  mov #0x0004, &MPUSAM\n"  // seg1 X only; seg2/3 nothing
                         "  mov #0xA501, &MPUCTL0\n"
                         "  mov #0x7777, &0x1C10\n"
                         + std::string(kStop),
                     50000);
  EXPECT_EQ(out2.result, StepResult::kStopped);
  EXPECT_EQ(m2.bus().PeekWord(0x1C10), 0x7777);
  EXPECT_EQ(m2.mpu().violation_flags(), 0);
}

TEST(MpuTest, WrongPasswordCausesPuc) {
  Machine m;
  AssembleAndLoad(&m,
                  std::string(kMpuRegs) +
                      "start:\n"
                      "  mov #0x0001, &MPUCTL0\n"  // missing 0xA5 password
                      "  jmp start\n");
  auto out = m.Run(1000);
  EXPECT_EQ(out.result, StepResult::kOk);  // PUC handled internally, keeps running
  EXPECT_GE(m.puc_count(), 1u);
}

TEST(MpuTest, LockFreezesConfiguration) {
  Machine m;
  auto out = RunAsm(&m,
                    std::string(kMpuRegs) +
                        "start:\n"
                        "  mov #0x0800, &MPUSEGB1\n"
                        "  mov #0xA503, &MPUCTL0\n"  // ENA | LOCK
                        "  mov #0x0C00, &MPUSEGB1\n"  // ignored: locked
                        + std::string(kStop),
                    50000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_TRUE(m.mpu().locked());
  EXPECT_EQ(m.mpu().boundary1(), 0x8000);
}

TEST(MpuTest, ViolationSelectPucReboots) {
  Machine m;
  AssembleAndLoad(&m,
                  std::string(kMpuRegs) +
                      "start:\n"
                      "  mov #1, r10\n"
                      "  mov #0x0800, &MPUSEGB1\n"
                      "  mov #0x0A00, &MPUSEGB2\n"
                      "  mov #0x0834, &MPUSAM\n"  // seg3 VS=1 -> PUC on violation
                      "  mov #0xA501, &MPUCTL0\n"
                      "  mov #1, &0xB000\n"  // violate seg3
                      "  jmp hang\n"
                      "hang:\n"
                      "  jmp hang\n");
  m.Run(2000);
  EXPECT_GE(m.puc_count(), 1u);
}

TEST(MpuTest, BoundaryGranularityIs16Bytes) {
  Machine m;
  m.bus().PokeWord(kMpuRegBase + kMpuSegB1, 0);  // direct device poke not routed; use API
  Mpu& mpu = m.mpu();
  mpu.WriteWord(kMpuCtl0, 0xA501);
  mpu.WriteWord(kMpuSegB1, 0x0441);
  EXPECT_EQ(mpu.boundary1(), 0x4410);
}

// ---------------------------------------------------------------------------
// HOSTIO + timer devices
// ---------------------------------------------------------------------------

TEST(HostIoTest, ConsoleOutput) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov.b #'H', &0x070E\n"
         "  mov.b #'i', &0x070E\n" +
             std::string(kStop));
  EXPECT_EQ(m.hostio().TakeConsoleOutput(), "Hi");
  EXPECT_EQ(m.hostio().TakeConsoleOutput(), "") << "Take drains the buffer";
}

TEST(HostIoTest, SyscallRoundTrip) {
  Machine m;
  SyscallRequest seen;
  m.hostio().SetSyscallHandler([&](const SyscallRequest& req) -> uint16_t {
    seen = req;
    return static_cast<uint16_t>(req.args[0] + req.args[1]);
  });
  RunAsm(&m,
         "start:\n"
         "  mov #7, &0x0700\n"    // syscall number
         "  mov #30, &0x0702\n"   // arg0
         "  mov #12, &0x0704\n"   // arg1
         "  mov #1, &0x070A\n"    // trigger
         "  mov &0x070C, r4\n" +  // result
             std::string(kStop));
  EXPECT_EQ(seen.number, 7);
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 42);
  EXPECT_EQ(m.hostio().syscall_count(), 1u);
}

TEST(HostIoTest, StopCodePropagates) {
  Machine m;
  auto out = RunAsm(&m,
                    "start:\n"
                    "  mov #2, &0x0710\n");
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(out.stop_code, 2);
}

TEST(TimerTest, CounterTracksCycles) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov &0x0342, r4\n"  // TARLO
         "  nop\n"
         "  nop\n"
         "  mov &0x0342, r5\n" +
             std::string(kStop));
  uint16_t first = m.cpu().reg(Reg::kR4);
  uint16_t second = m.cpu().reg(Reg::kR5);
  // Two NOPs (1 cycle each) plus the second read (3 cycles to fetch).
  EXPECT_EQ(second - first, 5);
}

TEST(TimerTest, Tar16HasSixteenCyclePrecision) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov &0x0348, r4\n" +  // TAR16
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), m.timer().now_cycles() >> 4 >= 1 ? m.cpu().reg(Reg::kR4) : 0);
  // Direct check: register equals cycles>>4 at read time (read occurs after
  // 3 cycles; 3>>4 == 0).
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0);
}

TEST(MachineTest, RunHandlesBudget) {
  Machine m;
  AssembleAndLoad(&m,
                  "start:\n"
                  "  jmp start\n");
  auto out = m.Run(100);
  EXPECT_EQ(out.result, StepResult::kOk);
  EXPECT_GE(out.cycles, 100u);
}


// ---------------------------------------------------------------------------
// Execution trace
// ---------------------------------------------------------------------------

TEST(TraceTest, RecordsRecentPcsOldestFirst) {
  ExecutionTrace trace(4);
  for (uint16_t pc = 0x4400; pc < 0x4410; pc += 2) {
    trace.Record(pc);
  }
  auto recent = trace.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0], 0x4408);
  EXPECT_EQ(recent[3], 0x440E);
  EXPECT_EQ(trace.total_recorded(), 8u);
}

TEST(TraceTest, PartialRingReportsOnlyRecorded) {
  ExecutionTrace trace(8);
  trace.Record(0x4400);
  trace.Record(0x4402);
  auto recent = trace.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0], 0x4400);
}

TEST(TraceTest, ClearEmptiesRingButKeepsLifetimeCount) {
  ExecutionTrace trace(4);
  for (uint16_t pc = 0x4400; pc < 0x440C; pc += 2) {
    trace.Record(pc);
  }
  EXPECT_EQ(trace.total_recorded(), 6u);
  EXPECT_EQ(trace.recorded_since_clear(), 6u);

  trace.Clear();
  EXPECT_TRUE(trace.Recent().empty());
  // Lifetime vs since-clear: total_recorded never resets, since_clear does.
  EXPECT_EQ(trace.total_recorded(), 6u);
  EXPECT_EQ(trace.recorded_since_clear(), 0u);

  trace.Record(0x5000);
  EXPECT_EQ(trace.total_recorded(), 7u);
  EXPECT_EQ(trace.recorded_since_clear(), 1u);
  auto recent = trace.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0], 0x5000);
}

TEST(TraceTest, CpuFeedsTraceAndRenderDisassembles) {
  Machine m;
  ExecutionTrace trace(8);
  m.cpu().set_trace(&trace);
  RunAsm(&m,
         "start:\n"
         "  mov #5, r4\n"
         "  add #2, r4\n" +
             std::string(kStop));
  auto recent = trace.Recent();
  ASSERT_GE(recent.size(), 3u);
  EXPECT_EQ(recent[0], kFramStart);
  std::string rendered = RenderTrace(trace, m.bus());
  EXPECT_NE(rendered.find("mov"), std::string::npos);
  EXPECT_NE(rendered.find("0x4400"), std::string::npos);
}


// ---------------------------------------------------------------------------
// MPY32 hardware multiplier
// ---------------------------------------------------------------------------

TEST(MultiplierTest, UnsignedMultiply) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #1234, &0x04C0\n"   // MPY
         "  mov #56, &0x04C8\n"     // OP2 triggers
         "  mov &0x04CA, r4\n"      // RESLO
         "  mov &0x04CC, r5\n" +    // RESHI
             std::string(kStop));
  const uint32_t product = 1234u * 56u;
  EXPECT_EQ(m.cpu().reg(Reg::kR4), product & 0xFFFF);
  EXPECT_EQ(m.cpu().reg(Reg::kR5), product >> 16);
}

TEST(MultiplierTest, SignedMultiplySetsHighWordSign) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0xFFFE, &0x04C2\n"  // MPYS: -2
         "  mov #3, &0x04C8\n"
         "  mov &0x04CA, r4\n"
         "  mov &0x04CC, r5\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 0xFFFA) << "-6 low word";
  EXPECT_EQ(m.cpu().reg(Reg::kR5), 0xFFFF) << "sign-extended high word";
}

TEST(MultiplierTest, LargeUnsignedProduct) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov #0xFFFF, &0x04C0\n"
         "  mov #0xFFFF, &0x04C8\n"
         "  mov &0x04CA, r4\n"
         "  mov &0x04CC, r5\n" +
             std::string(kStop));
  const uint32_t product = 0xFFFFu * 0xFFFFu;
  EXPECT_EQ(m.cpu().reg(Reg::kR4), product & 0xFFFF);
  EXPECT_EQ(m.cpu().reg(Reg::kR5), product >> 16);
}


// ---------------------------------------------------------------------------
// Watchdog timer
// ---------------------------------------------------------------------------

TEST(WatchdogTest, HeldByDefault) {
  Machine m;
  auto out = RunAsm(&m,
                    "start:\n"
                    "  mov #500, r6\n"
                    "spin:\n"
                    "  dec r6\n"
                    "  jnz spin\n" +
                        std::string(kStop),
                    50000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(m.puc_count(), 0u);
  EXPECT_TRUE(m.watchdog().held());
}

TEST(WatchdogTest, ExpiryForcesPuc) {
  Machine m;
  // Enable the dog on the shortest interval (2^6 = 64 cycles) and spin.
  AssembleAndLoad(&m,
                  "start:\n"
                  "  mov #0x5A07, &0x015C\n"  // password | WDTIS=7 (64 cycles)
                  "spin:\n"
                  "  jmp spin\n");
  m.Run(2000);
  EXPECT_GE(m.watchdog().expiries(), 1u);
  EXPECT_GE(m.puc_count(), 1u);
}

TEST(WatchdogTest, KickingPreventsExpiry) {
  Machine m;
  auto out = RunAsm(&m,
                    "start:\n"
                    "  mov #0x5A07, &0x015C\n"
                    "  mov #40, r6\n"
                    "loop:\n"
                    "  mov #0x5A0F, &0x015C\n"  // password | CNTCL | WDTIS=7
                    "  dec r6\n"
                    "  jnz loop\n"
                    "  mov #0x5A87, &0x015C\n"  // hold before stopping
                    + std::string(kStop),
                    50000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(m.watchdog().expiries(), 0u);
  EXPECT_EQ(m.puc_count(), 0u);
}

TEST(WatchdogTest, WrongPasswordForcesPuc) {
  Machine m;
  AssembleAndLoad(&m,
                  "start:\n"
                  "  mov #0x1287, &0x015C\n"  // bad password
                  "hang:\n"
                  "  jmp hang\n");
  m.Run(1000);
  EXPECT_GE(m.puc_count(), 1u);
}

TEST(WatchdogTest, ReadSignature) {
  Machine m;
  RunAsm(&m,
         "start:\n"
         "  mov &0x015C, r4\n" +
             std::string(kStop));
  EXPECT_EQ(m.cpu().reg(Reg::kR4) & 0xFF00, 0x6900);
  EXPECT_TRUE(m.cpu().reg(Reg::kR4) & 0x0080) << "HOLD visible in the low byte";
}

TEST(WatchdogTest, IntervalTable) {
  EXPECT_EQ(Watchdog::IntervalForSelect(7), 64u);
  EXPECT_EQ(Watchdog::IntervalForSelect(6), 512u);
  EXPECT_EQ(Watchdog::IntervalForSelect(4), 32768u);
  EXPECT_EQ(Watchdog::IntervalForSelect(0), 1ull << 31);
}

}  // namespace
}  // namespace amulet
