// Behavioural tests for the nine-application suite: each app, run under
// isolation on the simulated MCU with synthetic sensors, must do its job.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/aft/aft.h"
#include "src/apps/app_sources.h"
#include "src/os/os.h"

namespace amulet {
namespace {

const AppSpec& FindApp(const std::string& name) {
  for (const AppSpec& app : AmuletAppSuite()) {
    if (app.name == name) {
      return app;
    }
  }
  ADD_FAILURE() << "no app " << name;
  return AmuletAppSuite()[0];
}

struct AppRig {
  Machine machine;
  std::unique_ptr<AmuletOs> os;
  Image image;

  void Boot(const AppSpec& app, MemoryModel model = MemoryModel::kMpu) {
    AftOptions options;
    options.model = model;
    auto fw = BuildFirmware({{app.name, app.source}}, options);
    ASSERT_TRUE(fw.ok()) << fw.status().ToString();
    image = fw->image;
    os = std::make_unique<AmuletOs>(&machine, std::move(*fw), OsOptions{});
    ASSERT_TRUE(os->Boot().ok());
  }

  uint16_t Global(const std::string& app, const std::string& name) {
    uint16_t addr = image.SymbolOrZero(app + "_g_" + name);
    EXPECT_NE(addr, 0) << name;
    return machine.bus().PeekWord(addr);
  }
};

TEST(AppSuiteTest, SuiteHasTheNinePaperApps) {
  const char* expected[] = {"batterymeter", "clock",     "falldetection",
                            "hr",           "hrlog",     "pedometer",
                            "rest",         "sun",       "temperature"};
  ASSERT_EQ(AmuletAppSuite().size(), 9u);
  for (const char* name : expected) {
    bool found = false;
    for (const AppSpec& app : AmuletAppSuite()) {
      if (app.name == name) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(AppSuiteTest, AllAppsArePointerAndRecursionFree) {
  // The paper ported the original AmuletC apps; all nine must compile under
  // FeatureLimited too.
  AftOptions options;
  options.model = MemoryModel::kFeatureLimited;
  for (const AppSpec& app : AmuletAppSuite()) {
    auto fw = BuildFirmware({{app.name, app.source}}, options);
    EXPECT_TRUE(fw.ok()) << app.name << ": " << fw.status().ToString();
  }
}

TEST(AppSuiteTest, EventRatesDeclaredForSubscribedEvents) {
  for (const AppSpec& app : AmuletAppSuite()) {
    double total = 0;
    for (double rate : app.event_rate_hz) {
      EXPECT_GE(rate, 0) << app.name;
      total += rate;
    }
    EXPECT_GT(total, 0) << app.name << " must subscribe to something";
  }
}

TEST(BatteryMeterTest, WarnsOnceWhenLow) {
  AppRig rig;
  rig.Boot(FindApp("batterymeter"));
  // Fast-forward to late in the discharge week: 6.6 days.
  ASSERT_TRUE(rig.os->RunFor(1000).ok());
  // Easier: deliver timer events directly with battery state forced through
  // simulated time. Run ~6.5 simulated days in one-hour hops (timer fires
  // every minute; that is 9360 dispatches — fine for the simulator).
  ASSERT_TRUE(rig.os->RunFor(6ull * 24 * 3600 * 1000 + 16ull * 3600 * 1000).ok());
  EXPECT_TRUE(rig.os->faults().empty());
  // Battery is below 10% at ~6.6 days; the app logged tag 9 exactly once.
  int warnings = 0;
  for (const LogEntry& entry : rig.os->log()) {
    if (entry.tag == 9) {
      ++warnings;
    }
  }
  EXPECT_EQ(warnings, 1);
  EXPECT_LT(rig.os->display(0).at(0), 10);
}

TEST(ClockTest, DisplaysWallClock) {
  AppRig rig;
  rig.Boot(FindApp("clock"), MemoryModel::kSoftwareOnly);
  ASSERT_TRUE(rig.os->RunFor(3ull * 3600 * 1000 + 125 * 1000).ok());  // 3h 2m 5s
  auto display = rig.os->display(0);
  EXPECT_EQ(display.at(0), 3);   // hours
  EXPECT_EQ(display.at(1), 2);   // minutes
}

TEST(FallDetectionTest, DetectsFallsOnlyWhenFalling) {
  AppRig rig;
  rig.Boot(FindApp("falldetection"));
  rig.os->sensors().set_mode(ActivityMode::kWalking);
  ASSERT_TRUE(rig.os->RunFor(20'000).ok());
  EXPECT_EQ(rig.Global("falldetection", "falls"), 0u) << "no falls while walking";
  rig.os->sensors().set_mode(ActivityMode::kFalling);
  ASSERT_TRUE(rig.os->RunFor(3'000).ok());
  EXPECT_GE(rig.Global("falldetection", "falls"), 1u) << "fall detected";
  EXPECT_TRUE(rig.os->faults().empty());
}

TEST(HrTest, SmoothsAndTracksExtremes) {
  AppRig rig;
  rig.Boot(FindApp("hr"));
  rig.os->sensors().set_mode(ActivityMode::kRest);
  ASSERT_TRUE(rig.os->RunFor(30'000).ok());
  int ema = rig.os->display(0).at(0);
  EXPECT_GT(ema, 55);
  EXPECT_LT(ema, 85);
  int min_bpm = rig.Global("hr", "bpm_min");
  int max_bpm = rig.Global("hr", "bpm_max");
  EXPECT_LE(min_bpm, max_bpm);
  EXPECT_GT(min_bpm, 40);
}

TEST(HrLogTest, LogsEpochAverages) {
  AppRig rig;
  rig.Boot(FindApp("hrlog"));
  ASSERT_TRUE(rig.os->RunFor(3 * 60 * 1000 + 500).ok());  // three 1-minute epochs
  int epochs = 0;
  for (const LogEntry& entry : rig.os->log()) {
    if (entry.tag == 0) {
      ++epochs;
      EXPECT_GT(entry.value, 50);
      EXPECT_LT(entry.value, 110);
    }
  }
  EXPECT_EQ(epochs, 3);
}

TEST(PedometerTest, RestProducesNoSteps) {
  AppRig rig;
  rig.Boot(FindApp("pedometer"));
  rig.os->sensors().set_mode(ActivityMode::kRest);
  ASSERT_TRUE(rig.os->RunFor(30'000).ok());
  EXPECT_LE(rig.Global("pedometer", "steps"), 2u);
}

TEST(PedometerTest, RunningCountsFasterThanWalking) {
  AppRig walk;
  walk.Boot(FindApp("pedometer"));
  walk.os->sensors().set_mode(ActivityMode::kWalking);
  ASSERT_TRUE(walk.os->RunFor(30'000).ok());
  AppRig run;
  run.Boot(FindApp("pedometer"));
  run.os->sensors().set_mode(ActivityMode::kRunning);
  ASSERT_TRUE(run.os->RunFor(30'000).ok());
  EXPECT_GT(run.Global("pedometer", "steps"), walk.Global("pedometer", "steps"));
}

TEST(RestTest, CountsRestfulMinutes) {
  AppRig rig;
  rig.Boot(FindApp("rest"));
  rig.os->sensors().set_mode(ActivityMode::kRest);
  ASSERT_TRUE(rig.os->RunFor(3 * 60 * 1000 + 500).ok());
  EXPECT_EQ(rig.Global("rest", "rest_minutes"), 3u);
  AppRig active;
  active.Boot(FindApp("rest"));
  active.os->sensors().set_mode(ActivityMode::kRunning);
  ASSERT_TRUE(active.os->RunFor(3 * 60 * 1000 + 500).ok());
  EXPECT_EQ(active.Global("rest", "rest_minutes"), 0u);
}

TEST(SunTest, AccumulatesOnlyInDaylight) {
  AppRig rig;
  rig.Boot(FindApp("sun"));
  // Night first (t=0 is midnight): nothing accumulates.
  ASSERT_TRUE(rig.os->RunFor(3600 * 1000).ok());
  EXPECT_EQ(rig.Global("sun", "sun_seconds"), 0u);
  // Jump the scenario to midday by running through to 12:30.
  ASSERT_TRUE(rig.os->RunFor(11ull * 3600 * 1000 + 1800 * 1000).ok());
  EXPECT_GT(rig.Global("sun", "sun_seconds"), 600u);
}

TEST(TemperatureTest, DisplaysSmoothedDegrees) {
  AppRig rig;
  rig.Boot(FindApp("temperature"));
  ASSERT_TRUE(rig.os->RunFor(5 * 60 * 1000).ok());
  int degrees = rig.os->display(0).at(0);
  EXPECT_GE(degrees, 31);
  EXPECT_LE(degrees, 35);
}

TEST(AppSuiteTest, LongMixedScenarioStaysFaultFree) {
  // All nine apps, 10 simulated minutes across activity modes, under the
  // strictest full-featured model.
  std::vector<AppSource> sources;
  for (const AppSpec& app : AmuletAppSuite()) {
    sources.push_back({app.name, app.source});
  }
  AftOptions options;
  options.model = MemoryModel::kMpu;
  auto fw = BuildFirmware(sources, options);
  ASSERT_TRUE(fw.ok()) << fw.status().ToString();
  Machine machine;
  AmuletOs os(&machine, std::move(*fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  const ActivityMode modes[] = {ActivityMode::kRest, ActivityMode::kWalking,
                                ActivityMode::kRunning, ActivityMode::kFalling,
                                ActivityMode::kRest};
  for (ActivityMode mode : modes) {
    os.sensors().set_mode(mode);
    ASSERT_TRUE(os.RunFor(2 * 60 * 1000).ok());
  }
  EXPECT_TRUE(os.faults().empty()) << os.StatusReport();
  for (int i = 0; i < os.app_count(); ++i) {
    EXPECT_TRUE(os.app_enabled(i));
    EXPECT_GT(os.stats(i).dispatches, 0u) << i;
  }
}


// ---------------------------------------------------------------------------
// Example .amc files shipped for the amuletc CLI
// ---------------------------------------------------------------------------

std::string ReadExampleApp(const std::string& filename) {
  std::ifstream file(std::string(AMULET_SOURCE_DIR) + "/examples/apps/" + filename);
  EXPECT_TRUE(file.good()) << filename;
  std::ostringstream contents;
  contents << file.rdbuf();
  return contents.str();
}

TEST(ExampleAmcTest, StressAwareBuildsAndRuns) {
  AftOptions options;
  options.model = MemoryModel::kMpu;
  auto fw = BuildFirmware({{"stress", ReadExampleApp("stressaware.amc")}}, options);
  ASSERT_TRUE(fw.ok()) << fw.status().ToString();
  Machine machine;
  AmuletOs os(&machine, std::move(*fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  os.sensors().set_mode(ActivityMode::kRest);
  ASSERT_TRUE(os.RunFor(120'000).ok());  // two minutes of heartbeats
  EXPECT_TRUE(os.faults().empty());
  // A stress classification was displayed (level + bpm).
  EXPECT_EQ(os.display(0).size(), 2u);
  EXPECT_GE(os.display(0).at(1), 50);
}

TEST(ExampleAmcTest, IntervalTimerRunsAWorkout) {
  AftOptions options;
  options.model = MemoryModel::kFeatureLimited;  // pointer-free by design
  auto fw = BuildFirmware({{"workout", ReadExampleApp("intervaltimer.amc")}}, options);
  ASSERT_TRUE(fw.ok()) << fw.status().ToString();
  Machine machine;
  AmuletOs os(&machine, std::move(*fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  ASSERT_TRUE(os.PressButton(0).ok());  // start
  // 8 rounds x (40 work + 20 rest) = 480 s; run a bit longer.
  ASSERT_TRUE(os.RunFor(500'000).ok());
  EXPECT_TRUE(os.faults().empty());
  EXPECT_EQ(os.display(0).at(0), 3) << "PHASE_DONE";
  ASSERT_EQ(os.log().size(), 1u);
  EXPECT_EQ(os.log()[0].tag, 4);
  EXPECT_EQ(os.log()[0].value, (8 * 40) / 60) << "total work minutes";
}

TEST(ExampleAmcTest, BothBuildUnderEveryCompatibleModel) {
  const std::string stress = ReadExampleApp("stressaware.amc");
  const std::string interval = ReadExampleApp("intervaltimer.amc");
  for (MemoryModel model : kAllModels) {
    AftOptions options;
    options.model = model;
    EXPECT_TRUE(BuildFirmware({{"workout", interval}}, options).ok())
        << MemoryModelName(model);
    // stressaware is pointer-free too.
    EXPECT_TRUE(BuildFirmware({{"stress", stress}}, options).ok())
        << MemoryModelName(model);
  }
}


// ---------------------------------------------------------------------------
// Recursive quicksort (the paper's recursion caveat, end to end)
// ---------------------------------------------------------------------------

TEST(QuicksortRecursiveTest, FeatureLimitedRejectsIt) {
  const AppSpec& app = QuicksortRecursiveApp();
  AftOptions options;
  options.model = MemoryModel::kFeatureLimited;
  auto fw = BuildFirmware({{app.name, app.source}}, options);
  EXPECT_FALSE(fw.ok());
}

TEST(QuicksortRecursiveTest, StackAnalysisFallsBackToReservation) {
  const AppSpec& app = QuicksortRecursiveApp();
  AftOptions options;
  options.model = MemoryModel::kMpu;
  auto fw = BuildFirmware({{app.name, app.source}}, options);
  ASSERT_TRUE(fw.ok()) << fw.status().ToString();
  EXPECT_FALSE(fw->apps[0].stack_statically_bounded)
      << "the AFT cannot bound a recursive app's stack (paper, phase 1)";
  EXPECT_GE(fw->apps[0].stack_bytes, 512);
}

TEST(QuicksortRecursiveTest, SortsCorrectlyUnderFullFeaturedModels) {
  for (MemoryModel model : {MemoryModel::kNoIsolation, MemoryModel::kMpu,
                            MemoryModel::kSoftwareOnly}) {
    const AppSpec& app = QuicksortRecursiveApp();
    AftOptions options;
    options.model = model;
    auto fw = BuildFirmware({{app.name, app.source}}, options);
    ASSERT_TRUE(fw.ok()) << MemoryModelName(model);
    Machine machine;
    AmuletOs os(&machine, std::move(*fw), OsOptions{});
    ASSERT_TRUE(os.Boot().ok());
    ASSERT_TRUE(os.Deliver(0, EventType::kButton, 1).ok());
    EXPECT_TRUE(os.faults().empty()) << MemoryModelName(model);
    uint16_t ok_addr = os.firmware().image.SymbolOrZero("quicksort_rec_g_sorted_ok");
    EXPECT_EQ(machine.bus().PeekWord(ok_addr), 1u) << MemoryModelName(model);
  }
}

TEST(QuicksortRecursiveTest, RecursionTradesStackGuaranteesForSpeed) {
  // Same algorithm, same data. The recursive form is *faster*: the hardware
  // call stack is free while the iterative form's explicit seg[] stack pays
  // a checked dynamic array access per push/pop. What recursion costs
  // instead is the static stack guarantee (the paper's phase-1 caveat) —
  // the AFT must fall back to a fixed reservation.
  uint64_t cycles[2];
  bool bounded[2];
  const AppSpec* apps[2] = {&QuicksortApp(), &QuicksortRecursiveApp()};
  for (int i = 0; i < 2; ++i) {
    AftOptions options;
    options.model = MemoryModel::kMpu;
    auto fw = BuildFirmware({{apps[i]->name, apps[i]->source}}, options);
    ASSERT_TRUE(fw.ok());
    bounded[i] = fw->apps[0].stack_statically_bounded;
    Machine machine;
    AmuletOs os(&machine, std::move(*fw), OsOptions{});
    ASSERT_TRUE(os.Boot().ok());
    auto r = os.Deliver(0, EventType::kButton, 1);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->faulted);
    cycles[i] = r->cycles;
  }
  EXPECT_TRUE(bounded[0]) << "iterative: stack statically provable";
  EXPECT_FALSE(bounded[1]) << "recursive: reservation fallback";
  EXPECT_LT(cycles[1], cycles[0]) << "call stack beats a checked explicit stack";
}

}  // namespace
}  // namespace amulet
