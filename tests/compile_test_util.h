// Mini-toolchain for compiler tests: AmuletC source -> parse -> sema ->
// lower -> phase-2 checks -> codegen -> assemble -> link -> load -> run.
// Standalone harness (no AmuletOS): a startup stub sets SP, calls the app's
// main(), and stops the CPU. The full multi-app pipeline lives in src/aft.
#ifndef TESTS_COMPILE_TEST_UTIL_H_
#define TESTS_COMPILE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "src/aft/checks.h"
#include "src/aft/opt.h"
#include "src/asm/assembler.h"
#include "src/asm/linker.h"
#include "src/common/status.h"
#include "src/compiler/codegen.h"
#include "src/compiler/lower.h"
#include "src/lang/parser.h"
#include "src/lang/sema.h"
#include "src/mcu/machine.h"

namespace amulet {

struct CompileOutcome {
  Image image;
  Cpu::RunOutcome run;
  FeatureAudit audit;
  CheckStats checks;
};

// Build-configured default for the phase-2.5 check optimizer, so the whole
// test suite exercises whichever pipeline -DAMULET_CHECK_OPT selected.
#if defined(AMULET_CHECK_OPT_DISABLED)
inline constexpr bool kCheckOptDefault = false;
#else
inline constexpr bool kCheckOptDefault = true;
#endif

// Compiles `source` under `model` and runs its main() to completion.
// Data/code bounds for the checked models cover exactly the test layout
// (code [0x4400,0x7000), data+stack [0x7000,0x8800)); the test stack lives
// at the top of the data region so in-app pointers stay in bounds.
inline Result<CompileOutcome> CompileAndRun(Machine* machine, const std::string& source,
                                            MemoryModel model = MemoryModel::kNoIsolation,
                                            uint64_t max_cycles = 2'000'000,
                                            bool optimize_checks = kCheckOptDefault) {
  CompileOutcome out;
  ASSIGN_OR_RETURN(std::unique_ptr<Program> program, Parse(source, "t"));
  SemaOptions sema_options;
  RETURN_IF_ERROR(Analyze(program.get(), sema_options, &out.audit));
  if (model == MemoryModel::kFeatureLimited &&
      (out.audit.uses_pointers || out.audit.uses_recursion)) {
    return FailedPreconditionError("FeatureLimited rejects pointers/recursion (phase 1)");
  }
  ASSIGN_OR_RETURN(IrProgram ir, LowerProgram(program.get(), "t"));
  ASSIGN_OR_RETURN(out.checks, InsertChecks(&ir, model, BoundSymbolsFor("t")));
  RETURN_IF_ERROR(VerifyIr(ir, /*allow_markers=*/false));
  if (optimize_checks) {
    CheckOptOptions opt;
    opt.frame_safe = !out.audit.uses_recursion && !out.audit.has_indirect_calls;
    ASSIGN_OR_RETURN(CheckOptStats opt_stats, OptimizeChecks(&ir, BoundSymbolsFor("t"), opt));
    out.checks.elided_data_checks = opt_stats.elided_data_checks;
    out.checks.elided_code_checks = opt_stats.elided_code_checks;
    out.checks.elided_index_checks = opt_stats.elided_index_checks;
    out.checks.hoisted_checks = opt_stats.hoisted_checks;
    RETURN_IF_ERROR(VerifyIr(ir, /*allow_markers=*/false));
  }
  ASSIGN_OR_RETURN(CodegenResult code, GenerateAssembly(ir, CodegenOptions{".text", ".data"}));

  const std::string startup =
      "__start:\n"
      "  mov #0x8800, sp\n"   // stack at the top of the app data region
      "  call #t_f_main\n"
      "  mov #4, &0x0710\n"   // kStopMainDone
      "__hang:\n"
      "  jmp __hang\n";

  Linker linker;
  ASSIGN_OR_RETURN(ObjectFile startup_obj, Assemble(startup, "startup.s"));
  linker.AddObject(std::move(startup_obj));
  ASSIGN_OR_RETURN(ObjectFile rt_obj, Assemble(RuntimeAssembly(), "runtime.s"));
  linker.AddObject(std::move(rt_obj));
  ASSIGN_OR_RETURN(ObjectFile app_obj, Assemble(code.assembly, "app.s"));
  linker.AddObject(std::move(app_obj));

  BoundSymbols bounds = BoundSymbolsFor("t");
  linker.DefineAbsolute(bounds.code_lo, 0x4400);
  linker.DefineAbsolute(bounds.code_hi, 0x7000);
  linker.DefineAbsolute(bounds.data_lo, 0x7000);
  linker.DefineAbsolute(bounds.data_hi, 0x8800);

  ASSIGN_OR_RETURN(Image image, linker.Link({{".text", 0x4400}, {".data", 0x7000}}));
  LoadImage(image, &machine->bus());
  machine->bus().PokeWord(kResetVector, image.SymbolOrZero("__start"));
  machine->cpu().Reset();
  out.run = machine->Run(max_cycles);
  out.image = std::move(image);
  return out;
}

// Reads a 16-bit app global after a run.
inline uint16_t GlobalWord(Machine* machine, const Image& image, const std::string& name) {
  uint16_t addr = image.SymbolOrZero("t_g_" + name);
  EXPECT_NE(addr, 0) << "no such global: " << name;
  return machine->bus().PeekWord(addr);
}

}  // namespace amulet

#endif  // TESTS_COMPILE_TEST_UTIL_H_
