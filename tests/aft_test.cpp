// AFT unit tests: phase-level behaviour — feature audits per model, check
// insertion counts, stack-depth analysis, memory layout arithmetic, gate and
// veneer generation, bound-symbol values, and the ablation options.
#include <gtest/gtest.h>

#include "src/aft/aft.h"
#include "src/aft/listing.h"
#include "src/common/strings.h"
#include "src/os/os.h"

namespace amulet {
namespace {

Firmware Build(const std::string& name, const std::string& source, MemoryModel model,
               bool expect_ok = true) {
  AftOptions options;
  options.model = model;
  auto fw = BuildFirmware({{name, source}}, options);
  EXPECT_EQ(fw.ok(), expect_ok) << fw.status().ToString();
  if (!fw.ok()) {
    return Firmware{};
  }
  return std::move(*fw);
}

constexpr char kPlainApp[] = R"(
int x;
void on_init(void) { x = 1; }
)";

// ---------------------------------------------------------------------------
// Phase 1: model gating
// ---------------------------------------------------------------------------

TEST(AftPhase1Test, FeatureLimitedRejectsPointers) {
  AftOptions options;
  options.model = MemoryModel::kFeatureLimited;
  auto fw = BuildFirmware(
      {{"p", "int y; void on_init(void) { int* q = &y; *q = 1; }"}}, options);
  ASSERT_FALSE(fw.ok());
  EXPECT_NE(fw.status().message().find("pointers"), std::string::npos);
}

TEST(AftPhase1Test, FeatureLimitedRejectsRecursion) {
  AftOptions options;
  options.model = MemoryModel::kFeatureLimited;
  auto fw = BuildFirmware(
      {{"r", "int f(int n) { return n <= 0 ? 0 : f(n - 1); } void on_init(void) { f(3); }"}},
      options);
  ASSERT_FALSE(fw.ok());
  EXPECT_NE(fw.status().message().find("recursion"), std::string::npos);
}

TEST(AftPhase1Test, OtherModelsAcceptPointersAndRecursion) {
  const char* source =
      "int y; int f(int n) { return n <= 0 ? 0 : f(n - 1); } "
      "void on_init(void) { int* q = &y; *q = f(3); }";
  for (MemoryModel model : {MemoryModel::kNoIsolation, MemoryModel::kMpu,
                            MemoryModel::kSoftwareOnly}) {
    Firmware fw = Build("ok", source, model);
    EXPECT_EQ(fw.apps.size(), 1u) << MemoryModelName(model);
  }
}

TEST(AftPhase1Test, AppNamesValidated) {
  AftOptions options;
  EXPECT_FALSE(BuildFirmware({{"", kPlainApp}}, options).ok());
  EXPECT_FALSE(BuildFirmware({{"Bad-Name", kPlainApp}}, options).ok());
  EXPECT_FALSE(BuildFirmware({{"UPPER", kPlainApp}}, options).ok());
  EXPECT_TRUE(BuildFirmware({{"good_name_2", kPlainApp}}, options).ok());
}

TEST(AftPhase1Test, DuplicateAppNamesRejected) {
  AftOptions options;
  auto fw = BuildFirmware({{"dup", kPlainApp}, {"dup", kPlainApp}}, options);
  EXPECT_FALSE(fw.ok());
}

TEST(AftPhase1Test, UnknownApiCallRejected) {
  AftOptions options;
  auto fw = BuildFirmware({{"bad", "void on_init(void) { not_an_api(); }"}}, options);
  EXPECT_FALSE(fw.ok());
}

// ---------------------------------------------------------------------------
// Phase 2: check insertion counts
// ---------------------------------------------------------------------------

TEST(AftPhase2Test, CheckCountsPerModel) {
  // Two dynamic array accesses + one pointer deref + one fn-ptr call.
  const char* source = R"(
int a[8];
int tick(void) { return 1; }
void on_init(void) {
  int i = 2;
  a[i] = a[i + 1];
  int* p = &a[0];
  *p = 5;
  int (*fn)(void) = tick;
  fn();
}
)";
  struct Expectation {
    MemoryModel model;
    int data;
    int code;
    int index;
  };
  const Expectation expectations[] = {
      // Data markers: a[i] store, a[i+1] load, *p deref = 3 (&a[0] is an
      // address computation, not an access). One fn-ptr call check.
      {MemoryModel::kNoIsolation, 0, 0, 0},
      {MemoryModel::kMpu, 3, 1, 0},
      {MemoryModel::kSoftwareOnly, 3, 1, 0},
  };
  for (const Expectation& expect : expectations) {
    auto trace = TraceAppBuild({"cnt", source}, expect.model);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    EXPECT_EQ(trace->checks.data_checks, expect.data) << MemoryModelName(expect.model);
    EXPECT_EQ(trace->checks.code_checks, expect.code) << MemoryModelName(expect.model);
    EXPECT_EQ(trace->checks.index_checks, expect.index) << MemoryModelName(expect.model);
  }
}

TEST(AftPhase2Test, NoIsolationInsertsNothing) {
  auto trace = TraceAppBuild(
      {"cnt", "int a[4]; void on_init(void) { int i = 1; a[i] = 2; }"},
      MemoryModel::kNoIsolation);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->checks.data_checks, 0);
  EXPECT_EQ(trace->checks.index_checks, 0);
  EXPECT_EQ(trace->checks.ret_checks, 0);
  EXPECT_EQ(trace->ir_after_checks.find("check_"), std::string::npos);
}

TEST(AftPhase2Test, FeatureLimitedUsesIndexChecks) {
  auto trace = TraceAppBuild(
      {"cnt", "int a[4]; void on_init(void) { int i = 1; a[i] = 2; }"},
      MemoryModel::kFeatureLimited);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->checks.index_checks, 1);
  EXPECT_EQ(trace->checks.data_checks, 0);
  EXPECT_NE(trace->ir_after_checks.find("check_index"), std::string::npos);
}

TEST(AftPhase2Test, ConstantIndexAccessesNeedNoChecks) {
  auto trace = TraceAppBuild(
      {"cnt", "int a[4]; void on_init(void) { a[0] = 1; a[3] = 2; }"},
      MemoryModel::kSoftwareOnly);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->checks.data_checks, 0) << "statically-in-bounds accesses are free";
}

TEST(AftPhase2Test, RetChecksPerModel) {
  const char* source = "int f(void) { return 1; } void on_init(void) { f(); }";
  auto mpu = TraceAppBuild({"r", source}, MemoryModel::kMpu);
  ASSERT_TRUE(mpu.ok());
  EXPECT_EQ(mpu->checks.ret_checks, 2);  // f + on_init
  auto fl = TraceAppBuild({"r", source}, MemoryModel::kFeatureLimited);
  ASSERT_TRUE(fl.ok());
  EXPECT_EQ(fl->checks.ret_checks, 0);
  // MPU: one-sided (code_lo only); SW: two-sided.
  EXPECT_NE(mpu->assembly.find("__bnd_r_code_lo"), std::string::npos);
  EXPECT_EQ(mpu->assembly.find("__bnd_r_code_hi"), std::string::npos);
  auto sw = TraceAppBuild({"r", source}, MemoryModel::kSoftwareOnly);
  ASSERT_TRUE(sw.ok());
  EXPECT_NE(sw->assembly.find("__bnd_r_code_hi"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Phase 1/3: stack-depth analysis
// ---------------------------------------------------------------------------

TEST(AftStackTest, DeeperCallChainsGetBiggerStacks) {
  const char* shallow = "void on_init(void) { }";
  const char* deep = R"(
int f3(int a) { int pad[8]; pad[0] = a; return pad[0]; }
int f2(int a) { int pad[8]; pad[0] = f3(a); return pad[0]; }
int f1(int a) { int pad[8]; pad[0] = f2(a); return pad[0]; }
void on_init(void) { f1(1); }
)";
  Firmware fw_shallow = Build("s", shallow, MemoryModel::kMpu);
  Firmware fw_deep = Build("d", deep, MemoryModel::kMpu);
  EXPECT_TRUE(fw_shallow.apps[0].stack_statically_bounded);
  EXPECT_TRUE(fw_deep.apps[0].stack_statically_bounded);
  EXPECT_GT(fw_deep.apps[0].stack_bytes, fw_shallow.apps[0].stack_bytes);
}

TEST(AftStackTest, RecursionFallsBackToReservation) {
  const char* recursive =
      "int f(int n) { return n <= 0 ? 0 : f(n - 1); } void on_init(void) { f(3); }";
  AftOptions options;
  options.model = MemoryModel::kMpu;
  options.recursion_stack_bytes = 1024;
  auto fw = BuildFirmware({{"rec", recursive}}, options);
  ASSERT_TRUE(fw.ok());
  EXPECT_FALSE(fw->apps[0].stack_statically_bounded);
  EXPECT_GE(fw->apps[0].stack_bytes, 1024);
}

TEST(AftStackTest, IndirectCallsAlsoDefeatAnalysis) {
  const char* indirect = R"(
int leaf(void) { return 1; }
void on_init(void) { int (*p)(void) = leaf; p(); }
)";
  Firmware fw = Build("ind", indirect, MemoryModel::kMpu);
  EXPECT_FALSE(fw.apps[0].stack_statically_bounded);
}

// ---------------------------------------------------------------------------
// Phase 4: layout & symbols
// ---------------------------------------------------------------------------

TEST(AftLayoutTest, BoundSymbolsMatchLayout) {
  Firmware fw = Build("app1", kPlainApp, MemoryModel::kSoftwareOnly);
  const AppImage& app = fw.apps[0];
  EXPECT_EQ(fw.image.SymbolOrZero("__bnd_app1_code_lo"), app.code_lo);
  EXPECT_EQ(fw.image.SymbolOrZero("__bnd_app1_code_hi"), app.code_hi);
  EXPECT_EQ(fw.image.SymbolOrZero("__bnd_app1_data_lo"), app.data_lo);
  EXPECT_EQ(fw.image.SymbolOrZero("__bnd_app1_data_hi"), app.data_hi);
  EXPECT_EQ(fw.image.SymbolOrZero("__stacktop_app1"), app.stack_top);
}

TEST(AftLayoutTest, MpuRegisterValuesMatchBoundaries) {
  Firmware fw = Build("app1", kPlainApp, MemoryModel::kMpu);
  const AppImage& app = fw.apps[0];
  EXPECT_EQ(app.mpu_segb1, app.data_lo >> 4);
  EXPECT_EQ(app.mpu_segb2, app.data_hi >> 4);
  EXPECT_EQ(app.mpu_sam, 0x0034);
  EXPECT_EQ(fw.os_mpu_sam, 0x0334);
  EXPECT_EQ(fw.image.SymbolOrZero("__mpuv_app1_segb1"), app.mpu_segb1);
}

TEST(AftLayoutTest, AppsArePackedInOrderWithoutOverlap) {
  std::vector<AppSource> sources;
  for (int i = 0; i < 5; ++i) {
    sources.push_back({StrFormat("app%d", i), kPlainApp});
  }
  AftOptions options;
  options.model = MemoryModel::kMpu;
  auto fw = BuildFirmware(sources, options);
  ASSERT_TRUE(fw.ok());
  for (size_t i = 1; i < fw->apps.size(); ++i) {
    EXPECT_GE(fw->apps[i].code_lo, fw->apps[i - 1].data_hi) << i;
  }
}

TEST(AftLayoutTest, OverflowingFramFails) {
  // Each app reserves a large recursion stack; enough apps exhaust FRAM.
  const char* recursive =
      "int f(int n) { return n <= 0 ? 0 : f(n - 1); } void on_init(void) { f(1); }";
  std::vector<AppSource> sources;
  for (int i = 0; i < 40; ++i) {
    sources.push_back({StrFormat("big%d", i), recursive});
  }
  AftOptions options;
  options.model = MemoryModel::kMpu;
  options.recursion_stack_bytes = 2048;
  auto fw = BuildFirmware(sources, options);
  ASSERT_FALSE(fw.ok());
  EXPECT_EQ(fw.status().code(), StatusCode::kResourceExhausted);
}

TEST(AftLayoutTest, GatesGeneratedOnlyForCalledApis) {
  Firmware fw = Build(
      "g", "void on_init(void) { amulet_haptic_buzz(10); }", MemoryModel::kMpu);
  EXPECT_TRUE(fw.image.HasSymbol("__gate_g_amulet_haptic_buzz"));
  EXPECT_FALSE(fw.image.HasSymbol("__gate_g_amulet_noop"));
}

TEST(AftLayoutTest, HandlersResolved) {
  Firmware fw = Build("h",
                      "void on_init(void) { }\n"
                      "void on_timer(int id) { }\n"
                      "void on_accel(int x, int y, int z) { }\n",
                      MemoryModel::kMpu);
  const AppImage& app = fw.apps[0];
  EXPECT_NE(app.handlers[static_cast<size_t>(EventType::kInit)], 0);
  EXPECT_NE(app.handlers[static_cast<size_t>(EventType::kTimer)], 0);
  EXPECT_NE(app.handlers[static_cast<size_t>(EventType::kAccel)], 0);
  EXPECT_EQ(app.handlers[static_cast<size_t>(EventType::kButton)], 0);
  // Handlers live inside the app's code region.
  for (uint16_t handler : app.handlers) {
    if (handler != 0) {
      EXPECT_GE(handler, app.code_lo);
      EXPECT_LT(handler, app.code_hi);
    }
  }
}

TEST(AftLayoutTest, EmptyAppListRejected) {
  EXPECT_FALSE(BuildFirmware({}, AftOptions{}).ok());
}

// ---------------------------------------------------------------------------
// TraceAppBuild artifacts
// ---------------------------------------------------------------------------

TEST(AftTraceTest, ArtifactsPopulated) {
  auto trace = TraceAppBuild(
      {"t", "int a[4]; void on_init(void) { int i = 1; a[i] = 2; }"}, MemoryModel::kMpu);
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace->prelude_source.find("amulet_noop"), std::string::npos);
  EXPECT_NE(trace->ir_before_checks.find("CHECK_MARKER"), std::string::npos);
  EXPECT_EQ(trace->ir_after_checks.find("CHECK_MARKER"), std::string::npos);
  EXPECT_NE(trace->ir_after_checks.find("check_low"), std::string::npos);
  EXPECT_NE(trace->assembly.find("t_f_on_init:"), std::string::npos);
}


// ---------------------------------------------------------------------------
// Hardware-multiplier codegen option
// ---------------------------------------------------------------------------

TEST(HwMultiplierTest, ProductsMatchSoftwareRoutine) {
  const char* source = R"(
int results[6];
void on_init(void) {
  int a = 123;
  int b = -45;
  results[0] = a * 7;
  results[1] = a * b;
  results[2] = b * b;
  unsigned u = 50000;
  results[3] = (int)(u * 3);
  results[4] = a * 0;
  results[5] = (a + b) * (a - b);
}
)";
  uint16_t expect[6];
  {
    AftOptions options;
    options.model = MemoryModel::kNoIsolation;
    auto fw = BuildFirmware({{"m", source}}, options);
    ASSERT_TRUE(fw.ok());
    Machine machine;
    AmuletOs os(&machine, std::move(*fw), OsOptions{});
    ASSERT_TRUE(os.Boot().ok());
    uint16_t base = os.firmware().image.SymbolOrZero("m_g_results");
    for (int i = 0; i < 6; ++i) {
      expect[i] = machine.bus().PeekWord(static_cast<uint16_t>(base + 2 * i));
    }
  }
  AftOptions options;
  options.model = MemoryModel::kNoIsolation;
  options.use_hw_multiplier = true;
  auto fw = BuildFirmware({{"m", source}}, options);
  ASSERT_TRUE(fw.ok());
  Machine machine;
  AmuletOs os(&machine, std::move(*fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  uint16_t base = os.firmware().image.SymbolOrZero("m_g_results");
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(machine.bus().PeekWord(static_cast<uint16_t>(base + 2 * i)), expect[i]) << i;
  }
}

TEST(HwMultiplierTest, HardwareMultiplyIsMuchFaster) {
  const char* source = R"(
int sink;
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) {
  int acc = 1;
  for (int i = 1; i < 100; i++) {
    acc = acc * i + 1;
  }
  sink = acc;
}
)";
  uint64_t cycles[2];
  uint16_t results[2];
  for (int hw = 0; hw < 2; ++hw) {
    AftOptions options;
    options.model = MemoryModel::kMpu;
    options.use_hw_multiplier = hw == 1;
    auto fw = BuildFirmware({{"m", source}}, options);
    ASSERT_TRUE(fw.ok());
    Machine machine;
    AmuletOs os(&machine, std::move(*fw), OsOptions{});
    ASSERT_TRUE(os.Boot().ok());
    auto r = os.Deliver(0, EventType::kButton, 0);
    ASSERT_TRUE(r.ok());
    cycles[hw] = r->cycles;
    results[hw] = machine.bus().PeekWord(os.firmware().image.SymbolOrZero("m_g_sink"));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_LT(cycles[1] * 3, cycles[0] * 2)
      << "MPY32 should cut the mul-heavy loop by at least a third";
}


// ---------------------------------------------------------------------------
// Gate anatomy: the instruction-level mechanism behind Table 1's context-
// switch row, verified from the disassembled firmware.
// ---------------------------------------------------------------------------

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

std::string GateDisassembly(MemoryModel model, bool future_mpu = false) {
  AftOptions options;
  options.model = model;
  options.future_mpu = future_mpu;
  auto fw = BuildFirmware({{"g", "void on_init(void) { amulet_noop(); }"}}, options);
  EXPECT_TRUE(fw.ok()) << fw.status().ToString();
  if (!fw.ok()) {
    return "";
  }
  // OS text holds the gates: disassemble it and cut out the gate symbol.
  std::string os_text = DisassembleRange(
      *fw, kFramStart, static_cast<uint16_t>(fw->os_mpu_segb1 << 4));
  size_t start = os_text.find("__gate_g_amulet_noop:");
  EXPECT_NE(start, std::string::npos);
  size_t end = os_text.find("__", start + 2);  // next symbol
  return os_text.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

TEST(GateAnatomyTest, NoIsolationGateIsMarshallingOnly) {
  std::string gate = GateDisassembly(MemoryModel::kNoIsolation);
  EXPECT_EQ(CountOccurrences(gate, "&0x05a"), 0u) << "no MPU register writes:\n" << gate;
  EXPECT_EQ(CountOccurrences(gate, ", sp"), 0u) << "no stack switch:\n" << gate;
  EXPECT_GE(CountOccurrences(gate, "&0x070"), 6u) << "HOSTIO marshalling:\n" << gate;
}

TEST(GateAnatomyTest, FeatureLimitedGateMatchesNoIsolation) {
  // Table 1: context switch None == FL (both 90 on silicon).
  EXPECT_EQ(GateDisassembly(MemoryModel::kFeatureLimited).substr(22),
            GateDisassembly(MemoryModel::kNoIsolation).substr(22));
}

TEST(GateAnatomyTest, SoftwareOnlyGateAddsTheStackSwitch) {
  std::string gate = GateDisassembly(MemoryModel::kSoftwareOnly);
  EXPECT_EQ(CountOccurrences(gate, "&0x05a"), 0u) << "still no MPU writes:\n" << gate;
  EXPECT_GE(CountOccurrences(gate, ", sp"), 2u) << "save + load SP:\n" << gate;
}

TEST(GateAnatomyTest, MpuGateAddsEightMpuRegisterWrites) {
  std::string gate = GateDisassembly(MemoryModel::kMpu);
  // Two reconfiguration sequences (to-OS and back-to-app), four writes each:
  // MPUCTL0 password, SEGB1, SEGB2, SAM.
  EXPECT_EQ(CountOccurrences(gate, "&0x05a"), 8u) << gate;
  EXPECT_GE(CountOccurrences(gate, ", sp"), 2u) << "per-app stacks too:\n" << gate;
}

TEST(GateAnatomyTest, FutureMpuGateDropsTheReconfiguration) {
  std::string gate = GateDisassembly(MemoryModel::kMpu, /*future_mpu=*/true);
  EXPECT_EQ(CountOccurrences(gate, "&0x05a"), 0u)
      << "a >=4-region MPU would need no per-switch programming:\n" << gate;
  EXPECT_GE(CountOccurrences(gate, ", sp"), 2u);
}

}  // namespace
}  // namespace amulet
