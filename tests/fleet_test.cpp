// Fleet subsystem tests: machine snapshot round-trips, snapshot-based OS
// cloning vs a fresh boot, executor correctness, and thread-count-independent
// fleet determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "src/aft/aft.h"
#include "src/apps/app_sources.h"
#include "src/fleet/checkpoint.h"
#include "src/fleet/executor.h"
#include "src/fleet/fleet.h"
#include "src/mcu/machine.h"
#include "src/mcu/snapshot.h"
#include "src/os/os.h"

namespace amulet {
namespace {

constexpr char kTickerApp[] = R"(
int ticks;
void on_init(void) {
  ticks = 0;
  amulet_timer_start(0, 100);
  amulet_accel_subscribe(10);
}
void on_timer(int timer_id) {
  ticks = ticks + 1;
  amulet_display_digits(0, ticks);
}
void on_accel(int x, int y, int z) {
  amulet_log_value(1, x + y + z);
}
)";

Firmware MustBuild(MemoryModel model) {
  AftOptions options;
  options.model = model;
  auto fw = BuildFirmware({{"ticker", kTickerApp}}, options);
  EXPECT_TRUE(fw.ok()) << fw.status().ToString();
  return std::move(*fw);
}

TEST(SnapshotTest, RoundTripPreservesMachineState) {
  Firmware fw = MustBuild(MemoryModel::kMpu);
  Machine machine;
  AmuletOs os(&machine, fw, OsOptions{});
  ASSERT_TRUE(os.Boot().ok());

  MachineSnapshot snapshot = CaptureSnapshot(machine);
  EXPECT_GT(snapshot.bytes.size(), 0x10000u);  // at least the memory image

  Machine restored;
  ASSERT_TRUE(RestoreSnapshot(snapshot, &restored).ok());
  EXPECT_EQ(restored.cpu().cycle_count(), machine.cpu().cycle_count());
  EXPECT_EQ(restored.cpu().instruction_count(), machine.cpu().instruction_count());
  EXPECT_EQ(restored.cpu().pc(), machine.cpu().pc());
  EXPECT_EQ(restored.timer().now_cycles(), machine.timer().now_cycles());
  EXPECT_EQ(restored.hostio().syscall_count(), machine.hostio().syscall_count());
  EXPECT_EQ(restored.puc_count(), machine.puc_count());
  for (uint32_t addr = 0; addr < 0x10000; ++addr) {
    if (restored.bus().PeekByte(static_cast<uint16_t>(addr)) !=
        machine.bus().PeekByte(static_cast<uint16_t>(addr))) {
      FAIL() << "memory differs at address " << addr;
    }
  }

  // Capturing the restored machine reproduces the snapshot bit-for-bit.
  MachineSnapshot again = CaptureSnapshot(restored);
  EXPECT_EQ(again.bytes, snapshot.bytes);
}

TEST(SnapshotTest, RejectsCorruptInput) {
  Machine machine;
  MachineSnapshot snapshot = CaptureSnapshot(machine);

  MachineSnapshot bad_magic = snapshot;
  bad_magic.bytes[0] ^= 0xFF;
  Machine victim;
  EXPECT_FALSE(RestoreSnapshot(bad_magic, &victim).ok());

  MachineSnapshot bad_version = snapshot;
  bad_version.bytes[4] = 0x7F;
  EXPECT_FALSE(RestoreSnapshot(bad_version, &victim).ok());

  MachineSnapshot truncated = snapshot;
  truncated.bytes.resize(truncated.bytes.size() / 2);
  EXPECT_FALSE(RestoreSnapshot(truncated, &victim).ok());

  MachineSnapshot trailing = snapshot;
  trailing.bytes.push_back(0);
  EXPECT_FALSE(RestoreSnapshot(trailing, &victim).ok());

  MachineSnapshot empty;
  EXPECT_FALSE(RestoreSnapshot(empty, &victim).ok());
}

// A device cloned from a boot snapshot must behave exactly like the device
// the snapshot was taken from: same dispatch outcomes, same cycle counts.
TEST(SnapshotTest, CloneMatchesFreshBoot) {
  Firmware fw = MustBuild(MemoryModel::kMpu);
  OsOptions options;
  options.sensor_seed = 77;

  Machine fresh_machine;
  AmuletOs fresh(&fresh_machine, fw, options);
  ASSERT_TRUE(fresh.Boot().ok());
  MachineSnapshot snapshot = CaptureSnapshot(fresh_machine);

  Machine cloned_machine;
  AmuletOs cloned(&cloned_machine, fw, options);
  ASSERT_TRUE(cloned.BootFromSnapshot(snapshot, fresh).ok());
  EXPECT_EQ(cloned_machine.cpu().cycle_count(), fresh_machine.cpu().cycle_count());

  // Drive both through the same simulated timeline.
  ASSERT_TRUE(fresh.RunFor(3000).ok());
  ASSERT_TRUE(cloned.RunFor(3000).ok());
  EXPECT_EQ(cloned_machine.cpu().cycle_count(), fresh_machine.cpu().cycle_count());
  EXPECT_EQ(cloned_machine.hostio().syscall_count(), fresh_machine.hostio().syscall_count());
  EXPECT_EQ(cloned.stats(0).dispatches, fresh.stats(0).dispatches);
  EXPECT_EQ(cloned.stats(0).cycles, fresh.stats(0).cycles);
  EXPECT_EQ(cloned.stats(0).syscalls, fresh.stats(0).syscalls);
  EXPECT_EQ(cloned.stats(0).faults, fresh.stats(0).faults);
  EXPECT_EQ(cloned.display(0), fresh.display(0));
  EXPECT_EQ(cloned.log().size(), fresh.log().size());
}

TEST(SnapshotTest, BootFromSnapshotRequiresBootedTemplate) {
  Firmware fw = MustBuild(MemoryModel::kMpu);
  Machine m1;
  AmuletOs not_booted(&m1, fw, OsOptions{});
  MachineSnapshot snapshot = CaptureSnapshot(m1);
  Machine m2;
  AmuletOs clone(&m2, fw, OsOptions{});
  EXPECT_FALSE(clone.BootFromSnapshot(snapshot, not_booted).ok());
}

TEST(ExecutorTest, RunsEverySubmittedTask) {
  Executor executor(4);
  EXPECT_EQ(executor.thread_count(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    executor.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  executor.Wait();
  EXPECT_EQ(counter.load(), 1000);

  // Reusable after Wait().
  executor.ParallelFor(250, [&counter](size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 1250);
}

TEST(ExecutorTest, ParallelForCoversEveryIndexOnce) {
  Executor executor(8);
  std::vector<int> hits(513, 0);
  executor.ParallelFor(hits.size(), [&hits](size_t i) { hits[i] += 1; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ExecutorTest, TasksCanSubmitTasks) {
  Executor executor(2);
  std::atomic<int> counter{0};
  executor.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      executor.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  executor.Wait();
  EXPECT_EQ(counter.load(), 10);
}

FleetConfig SmallFleet(int jobs) {
  FleetConfig config;
  config.device_count = 8;
  config.apps = {"pedometer", "clock"};
  config.model = MemoryModel::kMpu;
  config.fleet_seed = 0xF1EE7;
  config.sim_ms = 500;
  config.jobs = jobs;
  return config;
}

TEST(FleetTest, DeterministicAcrossThreadCounts) {
  auto serial = RunFleet(SmallFleet(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(serial->devices.size(), 8u);
  EXPECT_GT(serial->aggregate.total_cycles, 0u);
  EXPECT_GT(serial->aggregate.total_data_accesses, 0u);
  EXPECT_GT(serial->aggregate.total_dispatches, 0u);

  const std::string serial_digest = FleetDigest(*serial);
  for (int jobs : {4, 8}) {
    auto parallel = RunFleet(SmallFleet(jobs));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(FleetDigest(*parallel), serial_digest) << "jobs=" << jobs;
  }
}

TEST(FleetTest, SeedChangesResults) {
  FleetConfig config = SmallFleet(2);
  auto a = RunFleet(config);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  config.fleet_seed ^= 1;
  auto b = RunFleet(config);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_NE(FleetDigest(*a), FleetDigest(*b));
}

TEST(FleetTest, DevicesDifferWithinAFleet) {
  auto report = RunFleet(SmallFleet(2));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Per-device seeds give devices distinct sensor streams; at least two of
  // the eight devices should disagree on measured cycles.
  bool any_difference = false;
  for (const DeviceStats& d : report->devices) {
    if (d.cycles != report->devices[0].cycles) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FleetTest, MetricsBitIdenticalAcrossThreadCounts) {
  auto serial = RunFleet(SmallFleet(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_FALSE(serial->metrics.empty());
  EXPECT_EQ(serial->metrics.counter("fleet.devices"), 8u);
  const std::string serial_json = serial->metrics.ToJson();
  for (int jobs : {4, 8}) {
    auto parallel = RunFleet(SmallFleet(jobs));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->metrics.ToJson(), serial_json) << "jobs=" << jobs;
  }
}

TEST(FleetTest, StreamingModeDropsDeviceRowsButKeepsTotals) {
  FleetConfig retained_config = SmallFleet(2);
  auto retained = RunFleet(retained_config);
  ASSERT_TRUE(retained.ok()) << retained.status().ToString();

  FleetConfig streaming_config = SmallFleet(2);
  streaming_config.retain_device_stats = false;
  auto streaming = RunFleet(streaming_config);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();

  EXPECT_TRUE(streaming->devices.empty());
  EXPECT_EQ(streaming->metrics.ToJson(), retained->metrics.ToJson());
  // Totals and count/min/max/mean come from exact integer state either way;
  // only the streaming quantiles are bucket-midpoint approximations.
  EXPECT_EQ(streaming->aggregate.total_cycles, retained->aggregate.total_cycles);
  EXPECT_EQ(streaming->aggregate.total_data_accesses,
            retained->aggregate.total_data_accesses);
  EXPECT_GT(streaming->aggregate.total_data_accesses, 0u);
  EXPECT_EQ(streaming->aggregate.total_syscalls, retained->aggregate.total_syscalls);
  EXPECT_EQ(streaming->aggregate.total_dispatches, retained->aggregate.total_dispatches);
  EXPECT_EQ(streaming->aggregate.total_faults, retained->aggregate.total_faults);
  EXPECT_EQ(streaming->aggregate.total_pucs, retained->aggregate.total_pucs);
  EXPECT_EQ(streaming->aggregate.cycles.count, retained->aggregate.cycles.count);
  EXPECT_DOUBLE_EQ(streaming->aggregate.cycles.min, retained->aggregate.cycles.min);
  EXPECT_DOUBLE_EQ(streaming->aggregate.cycles.max, retained->aggregate.cycles.max);
  EXPECT_DOUBLE_EQ(streaming->aggregate.cycles.mean, retained->aggregate.cycles.mean);
}

// The streaming-aggregation memory contract at fleet scale: the merged
// registry for 10,000 devices is byte-for-byte the same size as for 100.
// (Simulating 10k devices is far too slow for a unit test; what the fleet
// merges per device is exactly one registry shaped like this one, so merging
// synthetic registries exercises the same code path and representation.)
TEST(FleetTest, MetricsMemoryIndependentOfDeviceCount) {
  auto device_registry = [](int device_id) {
    // Mirrors RecordDeviceMetrics in src/fleet/fleet.cc: same counter and
    // histogram names, device-dependent values.
    const uint64_t id = static_cast<uint64_t>(device_id);
    MetricRegistry m;
    m.Add("fleet.devices", 1);
    m.Add("fleet.cycles", 100'000 + id * 31);
    m.Add("fleet.data_accesses", 4'000 + id * 7);
    m.Add("fleet.syscalls", 120 + id % 13);
    m.Add("fleet.dispatches", 60 + id % 5);
    m.Add("fleet.faults", id % 3);
    m.Add("fleet.pucs", id % 2);
    m.Add("fleet.watchdog_resets", id % 4);
    m.Observe("device.cycles", 100'000 + id * 31);
    m.Observe("device.data_accesses", 4'000 + id * 7);
    m.Observe("device.syscalls", 120 + id % 13);
    m.Observe("device.dispatches", 60 + id % 5);
    m.Observe("device.faults", id % 3);
    m.Observe("device.pucs", id % 2);
    m.Observe("device.watchdog_resets", id % 4);
    m.Observe("device.battery_upct", 50'000 + id * 11);
    return m;
  };

  MetricRegistry small;
  for (int i = 0; i < 100; ++i) {
    small.Merge(device_registry(i));
  }
  const size_t bytes_at_100 = small.ApproxBytes();

  MetricRegistry large;
  for (int i = 0; i < 10'000; ++i) {
    large.Merge(device_registry(i));
  }
  EXPECT_EQ(large.ApproxBytes(), bytes_at_100);
  EXPECT_EQ(large.counter("fleet.devices"), 10'000u);
  ASSERT_NE(large.histogram("device.cycles"), nullptr);
  EXPECT_EQ(large.histogram("device.cycles")->count, 10'000u);
}

TEST(FleetTest, UnknownAppIsRejected) {
  FleetConfig config = SmallFleet(1);
  config.apps = {"no_such_app"};
  auto report = RunFleet(config);
  EXPECT_FALSE(report.ok());
}

TEST(FleetTest, RenderedReportMentionsConfiguration) {
  auto report = RunFleet(SmallFleet(2));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string text = RenderFleetReport(*report);
  EXPECT_NE(text.find("8 device(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("pedometer"), std::string::npos) << text;
  EXPECT_NE(text.find("battery impact"), std::string::npos) << text;
  EXPECT_NE(text.find("data accesses"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Fleet checkpoints

FleetCheckpoint SampleCheckpoint() {
  FleetCheckpoint cp;
  cp.config_hash = FleetConfigHash(SmallFleet(1), 0xF00DF00Dull);
  cp.config_text = FleetConfigCanonical(SmallFleet(1), 0xF00DF00Dull);
  Machine machine;
  cp.template_snapshot = CaptureSnapshot(machine);
  cp.metrics.Add("fleet.devices", 2);
  cp.metrics.Observe("device.cycles", 12345);
  cp.device_count = 4;
  cp.completed = {true, false, true, false};
  DeviceStats d0;
  d0.device_id = 0;
  d0.cycles = 111;
  d0.data_accesses = 7;
  d0.battery_impact_percent = 0.5;
  DeviceStats d2;
  d2.device_id = 2;
  d2.cycles = 222;
  d2.pucs = 3;
  cp.devices = {d0, d2};
  return cp;
}

TEST(CheckpointTest, EncodeDecodeRoundTrip) {
  const FleetCheckpoint cp = SampleCheckpoint();
  const std::vector<uint8_t> bytes = EncodeFleetCheckpoint(cp);
  auto decoded = DecodeFleetCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->config_hash, cp.config_hash);
  EXPECT_EQ(decoded->config_text, cp.config_text);
  EXPECT_EQ(decoded->template_snapshot.bytes, cp.template_snapshot.bytes);
  EXPECT_EQ(decoded->metrics.ToJson(), cp.metrics.ToJson());
  EXPECT_EQ(decoded->device_count, 4);
  EXPECT_EQ(decoded->completed, cp.completed);
  EXPECT_EQ(decoded->CompletedCount(), 2);
  ASSERT_EQ(decoded->devices.size(), 2u);
  EXPECT_EQ(decoded->devices[0].data_accesses, 7u);
  EXPECT_EQ(decoded->devices[1].cycles, 222u);
  EXPECT_DOUBLE_EQ(decoded->devices[0].battery_impact_percent, 0.5);
}

// Satellite of the resume work: feeding back damaged checkpoint bytes must
// fail with InvalidArgumentError in every case — never crash, never
// half-apply.
TEST(CheckpointTest, DecodeRejectsCorruptInput) {
  const std::vector<uint8_t> bytes = EncodeFleetCheckpoint(SampleCheckpoint());
  auto expect_invalid = [](std::vector<uint8_t> damaged, const char* what) {
    auto decoded = DecodeFleetCheckpoint(damaged);
    EXPECT_FALSE(decoded.ok()) << what;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument) << what;
  };

  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  expect_invalid(bad_magic, "bad magic");

  std::vector<uint8_t> bad_version = bytes;
  bad_version[4] = 0x7F;
  expect_invalid(bad_version, "unknown version");

  expect_invalid({}, "empty");

  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  expect_invalid(trailing, "trailing bytes");

  for (size_t len : {bytes.size() - 1, bytes.size() / 2, size_t{9}, size_t{1}}) {
    std::vector<uint8_t> truncated = bytes;
    truncated.resize(len);
    expect_invalid(truncated, "truncated");
  }

  // A stats row for a device the bitmap says never completed.
  FleetCheckpoint contradictory = SampleCheckpoint();
  contradictory.completed[0] = false;
  expect_invalid(EncodeFleetCheckpoint(contradictory), "row without completed bit");

  // A stats row naming a device id outside the fleet.
  FleetCheckpoint out_of_range = SampleCheckpoint();
  out_of_range.devices[1].device_id = 9;
  expect_invalid(EncodeFleetCheckpoint(out_of_range), "out-of-range device id");
}

TEST(CheckpointTest, WriteAndReadBack) {
  const std::string path = "fleet_ckpt_rw_test.bin";
  std::remove(path.c_str());
  const FleetCheckpoint cp = SampleCheckpoint();
  ASSERT_TRUE(WriteFleetCheckpoint(path, cp).ok());
  // The atomic write leaves no temp file behind.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) {
    std::fclose(tmp);
  }
  auto back = ReadFleetCheckpoint(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->config_hash, cp.config_hash);
  EXPECT_EQ(back->CompletedCount(), 2);

  EXPECT_EQ(ReadFleetCheckpoint("no_such_checkpoint.bin").status().code(),
            StatusCode::kNotFound);

  // On-disk corruption surfaces as InvalidArgument, not a crash.
  std::FILE* junk = std::fopen(path.c_str(), "wb");
  ASSERT_NE(junk, nullptr);
  std::fputs("not a checkpoint", junk);
  std::fclose(junk);
  EXPECT_EQ(ReadFleetCheckpoint(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fail-fast and resume

// A failing device must cancel the run instead of letting the rest of the
// fleet simulate first. The serial run is exactly reproducible: devices 0 and
// 1 complete, device 2 fails, devices 3..7 are never simulated — which the
// checkpoint's completed bitmap proves.
TEST(FleetTest, FailedDeviceCancelsRemainingDevices) {
  const std::string path = "fleet_ckpt_failfast.bin";
  std::remove(path.c_str());
  FleetConfig config = SmallFleet(1);
  config.checkpoint_path = path;
  config.checkpoint_every_devices = 1;
  config.fail_device_id = 2;
  auto report = RunFleet(config);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_NE(report.status().message().find("device 2"), std::string::npos)
      << report.status().ToString();

  auto cp = ReadFleetCheckpoint(path);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_EQ(cp->CompletedCount(), 2);

  // The checkpoint written on the error path is a valid resume point once
  // the injected failure is removed.
  FleetConfig retry = SmallFleet(1);
  retry.checkpoint_path = path;
  auto resumed = ResumeFleet(retry);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->resumed_devices, 2);

  auto baseline = RunFleet(SmallFleet(1));
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(FleetDigest(*resumed), FleetDigest(*baseline));
  std::remove(path.c_str());
}

TEST(FleetTest, FailedDeviceCancelsParallelRun) {
  FleetConfig config = SmallFleet(4);
  config.fail_device_id = 0;
  auto report = RunFleet(config);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

// The tentpole acceptance: kill a run after K devices, resume from the
// checkpoint at several thread counts, and get a FleetDigest byte-identical
// to the uninterrupted run.
TEST(FleetTest, ResumeAfterAbortReproducesDigest) {
  auto baseline = RunFleet(SmallFleet(1));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string digest = FleetDigest(*baseline);

  for (int resume_jobs : {1, 4}) {
    const std::string path = "fleet_ckpt_resume_" + std::to_string(resume_jobs) + ".bin";
    std::remove(path.c_str());
    FleetConfig interrupted = SmallFleet(1);
    interrupted.checkpoint_path = path;
    interrupted.checkpoint_every_devices = 1;
    interrupted.abort_after_devices = 3;
    auto aborted = RunFleet(interrupted);
    ASSERT_FALSE(aborted.ok());
    EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled)
        << aborted.status().ToString();

    FleetConfig resume_config = SmallFleet(resume_jobs);
    resume_config.checkpoint_path = path;
    auto resumed = ResumeFleet(resume_config);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed->resumed_devices, 3);
    EXPECT_EQ(FleetDigest(*resumed), digest) << "jobs=" << resume_jobs;

    // The final checkpoint now covers the whole fleet; resuming again is a
    // no-op that re-yields the identical report.
    auto again = ResumeFleet(resume_config);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again->resumed_devices, 8);
    EXPECT_EQ(FleetDigest(*again), digest);
    std::remove(path.c_str());
  }
}

TEST(FleetTest, StreamingModeResumeMatchesUninterrupted) {
  FleetConfig streaming = SmallFleet(1);
  streaming.retain_device_stats = false;
  auto baseline = RunFleet(streaming);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::string path = "fleet_ckpt_streaming.bin";
  std::remove(path.c_str());
  FleetConfig interrupted = streaming;
  interrupted.checkpoint_path = path;
  interrupted.checkpoint_every_devices = 1;
  interrupted.abort_after_devices = 4;
  EXPECT_EQ(RunFleet(interrupted).status().code(), StatusCode::kCancelled);

  FleetConfig resume_config = streaming;
  resume_config.checkpoint_path = path;
  auto resumed = ResumeFleet(resume_config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->devices.empty());
  EXPECT_EQ(resumed->resumed_devices, 4);
  EXPECT_EQ(FleetDigest(*resumed), FleetDigest(*baseline));
  std::remove(path.c_str());
}

TEST(FleetTest, ResumeValidatesConfigAndPath) {
  const std::string path = "fleet_ckpt_mismatch.bin";
  std::remove(path.c_str());
  FleetConfig interrupted = SmallFleet(1);
  interrupted.checkpoint_path = path;
  interrupted.checkpoint_every_devices = 1;
  interrupted.abort_after_devices = 2;
  ASSERT_EQ(RunFleet(interrupted).status().code(), StatusCode::kCancelled);

  FleetConfig wrong_seed = SmallFleet(1);
  wrong_seed.checkpoint_path = path;
  wrong_seed.fleet_seed ^= 1;
  EXPECT_EQ(ResumeFleet(wrong_seed).status().code(), StatusCode::kInvalidArgument);

  FleetConfig wrong_count = SmallFleet(1);
  wrong_count.checkpoint_path = path;
  wrong_count.device_count = 9;
  EXPECT_EQ(ResumeFleet(wrong_count).status().code(), StatusCode::kInvalidArgument);

  FleetConfig no_path = SmallFleet(1);
  EXPECT_EQ(ResumeFleet(no_path).status().code(), StatusCode::kInvalidArgument);

  FleetConfig missing = SmallFleet(1);
  missing.checkpoint_path = "definitely_missing_checkpoint.bin";
  EXPECT_EQ(ResumeFleet(missing).status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amulet
