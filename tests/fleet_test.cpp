// Fleet subsystem tests: machine snapshot round-trips, snapshot-based OS
// cloning vs a fresh boot, executor correctness, and thread-count-independent
// fleet determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/aft/aft.h"
#include "src/apps/app_sources.h"
#include "src/fleet/executor.h"
#include "src/fleet/fleet.h"
#include "src/mcu/machine.h"
#include "src/mcu/snapshot.h"
#include "src/os/os.h"

namespace amulet {
namespace {

constexpr char kTickerApp[] = R"(
int ticks;
void on_init(void) {
  ticks = 0;
  amulet_timer_start(0, 100);
  amulet_accel_subscribe(10);
}
void on_timer(int timer_id) {
  ticks = ticks + 1;
  amulet_display_digits(0, ticks);
}
void on_accel(int x, int y, int z) {
  amulet_log_value(1, x + y + z);
}
)";

Firmware MustBuild(MemoryModel model) {
  AftOptions options;
  options.model = model;
  auto fw = BuildFirmware({{"ticker", kTickerApp}}, options);
  EXPECT_TRUE(fw.ok()) << fw.status().ToString();
  return std::move(*fw);
}

TEST(SnapshotTest, RoundTripPreservesMachineState) {
  Firmware fw = MustBuild(MemoryModel::kMpu);
  Machine machine;
  AmuletOs os(&machine, fw, OsOptions{});
  ASSERT_TRUE(os.Boot().ok());

  MachineSnapshot snapshot = CaptureSnapshot(machine);
  EXPECT_GT(snapshot.bytes.size(), 0x10000u);  // at least the memory image

  Machine restored;
  ASSERT_TRUE(RestoreSnapshot(snapshot, &restored).ok());
  EXPECT_EQ(restored.cpu().cycle_count(), machine.cpu().cycle_count());
  EXPECT_EQ(restored.cpu().instruction_count(), machine.cpu().instruction_count());
  EXPECT_EQ(restored.cpu().pc(), machine.cpu().pc());
  EXPECT_EQ(restored.timer().now_cycles(), machine.timer().now_cycles());
  EXPECT_EQ(restored.hostio().syscall_count(), machine.hostio().syscall_count());
  EXPECT_EQ(restored.puc_count(), machine.puc_count());
  for (uint32_t addr = 0; addr < 0x10000; ++addr) {
    if (restored.bus().PeekByte(static_cast<uint16_t>(addr)) !=
        machine.bus().PeekByte(static_cast<uint16_t>(addr))) {
      FAIL() << "memory differs at address " << addr;
    }
  }

  // Capturing the restored machine reproduces the snapshot bit-for-bit.
  MachineSnapshot again = CaptureSnapshot(restored);
  EXPECT_EQ(again.bytes, snapshot.bytes);
}

TEST(SnapshotTest, RejectsCorruptInput) {
  Machine machine;
  MachineSnapshot snapshot = CaptureSnapshot(machine);

  MachineSnapshot bad_magic = snapshot;
  bad_magic.bytes[0] ^= 0xFF;
  Machine victim;
  EXPECT_FALSE(RestoreSnapshot(bad_magic, &victim).ok());

  MachineSnapshot bad_version = snapshot;
  bad_version.bytes[4] = 0x7F;
  EXPECT_FALSE(RestoreSnapshot(bad_version, &victim).ok());

  MachineSnapshot truncated = snapshot;
  truncated.bytes.resize(truncated.bytes.size() / 2);
  EXPECT_FALSE(RestoreSnapshot(truncated, &victim).ok());

  MachineSnapshot trailing = snapshot;
  trailing.bytes.push_back(0);
  EXPECT_FALSE(RestoreSnapshot(trailing, &victim).ok());

  MachineSnapshot empty;
  EXPECT_FALSE(RestoreSnapshot(empty, &victim).ok());
}

// A device cloned from a boot snapshot must behave exactly like the device
// the snapshot was taken from: same dispatch outcomes, same cycle counts.
TEST(SnapshotTest, CloneMatchesFreshBoot) {
  Firmware fw = MustBuild(MemoryModel::kMpu);
  OsOptions options;
  options.sensor_seed = 77;

  Machine fresh_machine;
  AmuletOs fresh(&fresh_machine, fw, options);
  ASSERT_TRUE(fresh.Boot().ok());
  MachineSnapshot snapshot = CaptureSnapshot(fresh_machine);

  Machine cloned_machine;
  AmuletOs cloned(&cloned_machine, fw, options);
  ASSERT_TRUE(cloned.BootFromSnapshot(snapshot, fresh).ok());
  EXPECT_EQ(cloned_machine.cpu().cycle_count(), fresh_machine.cpu().cycle_count());

  // Drive both through the same simulated timeline.
  ASSERT_TRUE(fresh.RunFor(3000).ok());
  ASSERT_TRUE(cloned.RunFor(3000).ok());
  EXPECT_EQ(cloned_machine.cpu().cycle_count(), fresh_machine.cpu().cycle_count());
  EXPECT_EQ(cloned_machine.hostio().syscall_count(), fresh_machine.hostio().syscall_count());
  EXPECT_EQ(cloned.stats(0).dispatches, fresh.stats(0).dispatches);
  EXPECT_EQ(cloned.stats(0).cycles, fresh.stats(0).cycles);
  EXPECT_EQ(cloned.stats(0).syscalls, fresh.stats(0).syscalls);
  EXPECT_EQ(cloned.stats(0).faults, fresh.stats(0).faults);
  EXPECT_EQ(cloned.display(0), fresh.display(0));
  EXPECT_EQ(cloned.log().size(), fresh.log().size());
}

TEST(SnapshotTest, BootFromSnapshotRequiresBootedTemplate) {
  Firmware fw = MustBuild(MemoryModel::kMpu);
  Machine m1;
  AmuletOs not_booted(&m1, fw, OsOptions{});
  MachineSnapshot snapshot = CaptureSnapshot(m1);
  Machine m2;
  AmuletOs clone(&m2, fw, OsOptions{});
  EXPECT_FALSE(clone.BootFromSnapshot(snapshot, not_booted).ok());
}

TEST(ExecutorTest, RunsEverySubmittedTask) {
  Executor executor(4);
  EXPECT_EQ(executor.thread_count(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    executor.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  executor.Wait();
  EXPECT_EQ(counter.load(), 1000);

  // Reusable after Wait().
  executor.ParallelFor(250, [&counter](size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 1250);
}

TEST(ExecutorTest, ParallelForCoversEveryIndexOnce) {
  Executor executor(8);
  std::vector<int> hits(513, 0);
  executor.ParallelFor(hits.size(), [&hits](size_t i) { hits[i] += 1; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ExecutorTest, TasksCanSubmitTasks) {
  Executor executor(2);
  std::atomic<int> counter{0};
  executor.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      executor.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  executor.Wait();
  EXPECT_EQ(counter.load(), 10);
}

FleetConfig SmallFleet(int jobs) {
  FleetConfig config;
  config.device_count = 8;
  config.apps = {"pedometer", "clock"};
  config.model = MemoryModel::kMpu;
  config.fleet_seed = 0xF1EE7;
  config.sim_ms = 500;
  config.jobs = jobs;
  return config;
}

TEST(FleetTest, DeterministicAcrossThreadCounts) {
  auto serial = RunFleet(SmallFleet(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(serial->devices.size(), 8u);
  EXPECT_GT(serial->aggregate.total_cycles, 0u);
  EXPECT_GT(serial->aggregate.total_dispatches, 0u);

  const std::string serial_digest = FleetDigest(*serial);
  for (int jobs : {4, 8}) {
    auto parallel = RunFleet(SmallFleet(jobs));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(FleetDigest(*parallel), serial_digest) << "jobs=" << jobs;
  }
}

TEST(FleetTest, SeedChangesResults) {
  FleetConfig config = SmallFleet(2);
  auto a = RunFleet(config);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  config.fleet_seed ^= 1;
  auto b = RunFleet(config);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_NE(FleetDigest(*a), FleetDigest(*b));
}

TEST(FleetTest, DevicesDifferWithinAFleet) {
  auto report = RunFleet(SmallFleet(2));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Per-device seeds give devices distinct sensor streams; at least two of
  // the eight devices should disagree on measured cycles.
  bool any_difference = false;
  for (const DeviceStats& d : report->devices) {
    if (d.cycles != report->devices[0].cycles) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FleetTest, MetricsBitIdenticalAcrossThreadCounts) {
  auto serial = RunFleet(SmallFleet(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_FALSE(serial->metrics.empty());
  EXPECT_EQ(serial->metrics.counter("fleet.devices"), 8u);
  const std::string serial_json = serial->metrics.ToJson();
  for (int jobs : {4, 8}) {
    auto parallel = RunFleet(SmallFleet(jobs));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->metrics.ToJson(), serial_json) << "jobs=" << jobs;
  }
}

TEST(FleetTest, StreamingModeDropsDeviceRowsButKeepsTotals) {
  FleetConfig retained_config = SmallFleet(2);
  auto retained = RunFleet(retained_config);
  ASSERT_TRUE(retained.ok()) << retained.status().ToString();

  FleetConfig streaming_config = SmallFleet(2);
  streaming_config.retain_device_stats = false;
  auto streaming = RunFleet(streaming_config);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();

  EXPECT_TRUE(streaming->devices.empty());
  EXPECT_EQ(streaming->metrics.ToJson(), retained->metrics.ToJson());
  // Totals and count/min/max/mean come from exact integer state either way;
  // only the streaming quantiles are bucket-midpoint approximations.
  EXPECT_EQ(streaming->aggregate.total_cycles, retained->aggregate.total_cycles);
  EXPECT_EQ(streaming->aggregate.total_syscalls, retained->aggregate.total_syscalls);
  EXPECT_EQ(streaming->aggregate.total_dispatches, retained->aggregate.total_dispatches);
  EXPECT_EQ(streaming->aggregate.total_faults, retained->aggregate.total_faults);
  EXPECT_EQ(streaming->aggregate.total_pucs, retained->aggregate.total_pucs);
  EXPECT_EQ(streaming->aggregate.cycles.count, retained->aggregate.cycles.count);
  EXPECT_DOUBLE_EQ(streaming->aggregate.cycles.min, retained->aggregate.cycles.min);
  EXPECT_DOUBLE_EQ(streaming->aggregate.cycles.max, retained->aggregate.cycles.max);
  EXPECT_DOUBLE_EQ(streaming->aggregate.cycles.mean, retained->aggregate.cycles.mean);
}

// The streaming-aggregation memory contract at fleet scale: the merged
// registry for 10,000 devices is byte-for-byte the same size as for 100.
// (Simulating 10k devices is far too slow for a unit test; what the fleet
// merges per device is exactly one registry shaped like this one, so merging
// synthetic registries exercises the same code path and representation.)
TEST(FleetTest, MetricsMemoryIndependentOfDeviceCount) {
  auto device_registry = [](int device_id) {
    // Mirrors RecordDeviceMetrics in src/fleet/fleet.cc: same counter and
    // histogram names, device-dependent values.
    const uint64_t id = static_cast<uint64_t>(device_id);
    MetricRegistry m;
    m.Add("fleet.devices", 1);
    m.Add("fleet.cycles", 100'000 + id * 31);
    m.Add("fleet.data_accesses", 4'000 + id * 7);
    m.Add("fleet.syscalls", 120 + id % 13);
    m.Add("fleet.dispatches", 60 + id % 5);
    m.Add("fleet.faults", id % 3);
    m.Add("fleet.pucs", id % 2);
    m.Observe("device.cycles", 100'000 + id * 31);
    m.Observe("device.data_accesses", 4'000 + id * 7);
    m.Observe("device.syscalls", 120 + id % 13);
    m.Observe("device.dispatches", 60 + id % 5);
    m.Observe("device.faults", id % 3);
    m.Observe("device.pucs", id % 2);
    m.Observe("device.battery_upct", 50'000 + id * 11);
    return m;
  };

  MetricRegistry small;
  for (int i = 0; i < 100; ++i) {
    small.Merge(device_registry(i));
  }
  const size_t bytes_at_100 = small.ApproxBytes();

  MetricRegistry large;
  for (int i = 0; i < 10'000; ++i) {
    large.Merge(device_registry(i));
  }
  EXPECT_EQ(large.ApproxBytes(), bytes_at_100);
  EXPECT_EQ(large.counter("fleet.devices"), 10'000u);
  ASSERT_NE(large.histogram("device.cycles"), nullptr);
  EXPECT_EQ(large.histogram("device.cycles")->count, 10'000u);
}

TEST(FleetTest, UnknownAppIsRejected) {
  FleetConfig config = SmallFleet(1);
  config.apps = {"no_such_app"};
  auto report = RunFleet(config);
  EXPECT_FALSE(report.ok());
}

TEST(FleetTest, RenderedReportMentionsConfiguration) {
  auto report = RunFleet(SmallFleet(2));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string text = RenderFleetReport(*report);
  EXPECT_NE(text.find("8 device(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("pedometer"), std::string::npos) << text;
  EXPECT_NE(text.find("battery impact"), std::string::npos) << text;
}

}  // namespace
}  // namespace amulet
