// End-to-end compiler tests: AmuletC programs executed on the simulated
// MSP430, results read back from app globals.
#include <gtest/gtest.h>

#include "tests/compile_test_util.h"

namespace amulet {
namespace {

uint16_t RunAndGet(const std::string& source, const std::string& global,
                   MemoryModel model = MemoryModel::kNoIsolation) {
  Machine m;
  auto out = CompileAndRun(&m, source, model);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) {
    return 0xDEAD;
  }
  EXPECT_EQ(out->run.result, StepResult::kStopped) << "program did not stop cleanly";
  EXPECT_EQ(out->run.stop_code, 4);
  return GlobalWord(&m, out->image, global);
}

TEST(CompilerExecTest, ReturnConstant) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = 42; }", "r"), 42);
}

TEST(CompilerExecTest, Arithmetic) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = 10 + 3 * 4 - 6 / 2; }", "r"), 19);
}

TEST(CompilerExecTest, MultiplyRuntime) {
  EXPECT_EQ(RunAndGet("int r; int a; void main(void) { a = 123; r = a * 37; }", "r"),
            123 * 37);
}

TEST(CompilerExecTest, SignedDivision) {
  EXPECT_EQ(static_cast<int16_t>(RunAndGet(
                "int r; int a; void main(void) { a = -37; r = a / 5; }", "r")),
            -7);
  EXPECT_EQ(static_cast<int16_t>(RunAndGet(
                "int r; int a; void main(void) { a = -37; r = a % 5; }", "r")),
            -2);
}

TEST(CompilerExecTest, UnsignedDivision) {
  EXPECT_EQ(RunAndGet("unsigned r; unsigned a; void main(void) { a = 50000; r = a / 7; }",
                      "r"),
            50000u / 7);
  EXPECT_EQ(RunAndGet("unsigned r; unsigned a; void main(void) { a = 50000; r = a % 7; }",
                      "r"),
            50000u % 7);
}

TEST(CompilerExecTest, Shifts) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = 3 << 4; }", "r"), 48);
  EXPECT_EQ(RunAndGet("unsigned r; unsigned a; void main(void) { a = 0x8000; r = a >> 3; }",
                      "r"),
            0x1000);
  EXPECT_EQ(static_cast<int16_t>(RunAndGet(
                "int r; int a; void main(void) { a = -64; r = a >> 2; }", "r")),
            -16);
  EXPECT_EQ(RunAndGet("int r; int n; void main(void) { n = 5; r = 3 << n; }", "r"), 96);
}

TEST(CompilerExecTest, BitwiseOps) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = (0xF0F0 & 0x0FF0) | 0x000F; }", "r"),
            0x00FF);
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = 0xAAAA ^ 0xFFFF; }", "r"), 0x5555);
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = ~0x00FF & 0xFFFF; }", "r"), 0xFF00);
}

TEST(CompilerExecTest, ComparisonsAndConditionals) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = (3 < 4) + (4 <= 4) + (5 > 4) + "
                      "(4 >= 5) + (4 == 4) + (4 != 4); }",
                      "r"),
            4);
  EXPECT_EQ(RunAndGet("int r; int a; void main(void) { a = -1; if (a < 1) r = 7; else r = 8; }",
                      "r"),
            7);
  EXPECT_EQ(RunAndGet("unsigned r; unsigned a; void main(void) { a = 0xFFFF; "
                      "if (a < 1) r = 7; else r = 8; }",
                      "r"),
            8)
      << "0xFFFF is large unsigned";
}

TEST(CompilerExecTest, TernaryAndLogical) {
  EXPECT_EQ(RunAndGet("int r; int a; void main(void) { a = 3; r = a > 2 ? 10 : 20; }", "r"),
            10);
  EXPECT_EQ(RunAndGet("int r; int a; void main(void) { a = 0; r = (a && (1/a)) + 5; }", "r"),
            5)
      << "&& must short-circuit (no divide-by-zero)";
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = (1 || 0) + (0 || 0) + !0 + !7; }", "r"),
            2);
}

TEST(CompilerExecTest, WhileLoop) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { int i = 0; r = 0; "
                      "while (i < 10) { r += i; i++; } }",
                      "r"),
            45);
}

TEST(CompilerExecTest, ForLoopWithBreakContinue) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = 0; "
                      "for (int i = 0; i < 100; i++) { "
                      "  if (i % 2 == 0) continue; "
                      "  if (i > 10) break; "
                      "  r += i; } }",
                      "r"),
            1 + 3 + 5 + 7 + 9);
}

TEST(CompilerExecTest, DoWhile) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { int i = 10; r = 0; "
                      "do { r++; i--; } while (i > 0); }",
                      "r"),
            10);
}

TEST(CompilerExecTest, FunctionsAndRecursion) {
  EXPECT_EQ(RunAndGet("int r; "
                      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } "
                      "void main(void) { r = fib(12); }",
                      "r"),
            144);
}

TEST(CompilerExecTest, FourArguments) {
  EXPECT_EQ(RunAndGet("int r; "
                      "int f(int a, int b, int c, int d) { return a*1000 + b*100 + c*10 + d; } "
                      "void main(void) { r = f(1, 2, 3, 4); }",
                      "r"),
            1234);
}

TEST(CompilerExecTest, GlobalArraysAndInit) {
  EXPECT_EQ(RunAndGet("int tbl[4] = {5, 6, 7, 8}; int r; "
                      "void main(void) { r = tbl[0] + tbl[3]; }",
                      "r"),
            13);
}

TEST(CompilerExecTest, DynamicArrayIndexing) {
  EXPECT_EQ(RunAndGet("int a[8]; int r; "
                      "void main(void) { for (int i = 0; i < 8; i++) a[i] = i * i; "
                      "r = 0; for (int i = 0; i < 8; i++) r += a[i]; }",
                      "r"),
            0 + 1 + 4 + 9 + 16 + 25 + 36 + 49);
}

TEST(CompilerExecTest, LocalArrays) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { int a[5] = {1, 2, 3}; "
                      "r = a[0] + a[1] + a[2] + a[3] + a[4]; }",
                      "r"),
            6)
      << "partial init zero-fills";
}

TEST(CompilerExecTest, CharArraysAndSignExtension) {
  EXPECT_EQ(static_cast<int16_t>(
                RunAndGet("char c[2]; int r; void main(void) { c[0] = -5; r = c[0]; }", "r")),
            -5);
  EXPECT_EQ(RunAndGet("unsigned char c[2]; int r; void main(void) { c[0] = 200; r = c[0]; }",
                      "r"),
            200);
}

TEST(CompilerExecTest, Pointers) {
  EXPECT_EQ(RunAndGet("int x; int r; void main(void) { int* p = &x; *p = 99; r = x; }", "r"),
            99);
  EXPECT_EQ(RunAndGet("int a[4]; int r; void main(void) { int* p = a; "
                      "*p = 1; *(p + 1) = 2; p[2] = 3; "
                      "r = a[0] + a[1] + a[2]; }",
                      "r"),
            6);
}

TEST(CompilerExecTest, PointerWalk) {
  EXPECT_EQ(RunAndGet("int a[6]; int r; void main(void) { "
                      "for (int i = 0; i < 6; i++) a[i] = i + 1; "
                      "int* p = a; int* end = a + 6; r = 0; "
                      "while (p < end) { r += *p; p++; } }",
                      "r"),
            21);
}

TEST(CompilerExecTest, PointerDifference) {
  EXPECT_EQ(RunAndGet("int a[10]; int r; void main(void) { "
                      "int* p = a + 7; int* q = a + 2; r = p - q; }",
                      "r"),
            5);
}

TEST(CompilerExecTest, Structs) {
  EXPECT_EQ(RunAndGet("struct Point { int x; int y; char tag; }; "
                      "struct Point g; int r; "
                      "void main(void) { g.x = 10; g.y = 32; g.tag = 'A'; "
                      "r = g.x + g.y + g.tag; }",
                      "r"),
            10 + 32 + 'A');
}

TEST(CompilerExecTest, StructPointers) {
  EXPECT_EQ(RunAndGet("struct P { int x; int y; }; struct P g; int r; "
                      "void f(struct P* p) { p->x = 3; p->y = 4; } "
                      "void main(void) { f(&g); r = g.x * 10 + g.y; }",
                      "r"),
            34);
}

TEST(CompilerExecTest, LocalStructs) {
  EXPECT_EQ(RunAndGet("struct P { int a; int b; }; int r; "
                      "void main(void) { struct P p = {7, 8}; r = p.a * p.b; }",
                      "r"),
            56);
}

TEST(CompilerExecTest, FunctionPointers) {
  EXPECT_EQ(RunAndGet("int add(int a, int b) { return a + b; } "
                      "int mul(int a, int b) { return a * b; } "
                      "int r; "
                      "void main(void) { int (*op)(int, int) = add; r = op(3, 4); "
                      "op = mul; r += op(3, 4); }",
                      "r"),
            7 + 12);
}

TEST(CompilerExecTest, FunctionPointerTable) {
  EXPECT_EQ(RunAndGet("int inc(int a) { return a + 1; } "
                      "int dbl(int a) { return a + a; } "
                      "int (*ops[2])(int) = {inc, dbl}; int r; "
                      "void main(void) { r = ops[0](10) + ops[1](10); }",
                      "r"),
            11 + 20);
}

TEST(CompilerExecTest, Switch) {
  EXPECT_EQ(RunAndGet("int classify(int x) { "
                      "  switch (x) { "
                      "    case 0: return 100; "
                      "    case 1: "
                      "    case 2: return 200; "
                      "    default: return 300; "
                      "  } "
                      "} "
                      "int r; void main(void) { r = classify(0) + classify(1) + classify(2) "
                      "+ classify(9); }",
                      "r"),
            100 + 200 + 200 + 300);
}

TEST(CompilerExecTest, SwitchFallthrough) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { r = 0; "
                      "switch (2) { case 1: r += 1; case 2: r += 2; case 3: r += 4; } }",
                      "r"),
            6);
}

TEST(CompilerExecTest, EnumsAndSizeof) {
  EXPECT_EQ(RunAndGet("enum State { IDLE, RUN = 5, DONE }; int r; "
                      "void main(void) { r = IDLE + RUN + DONE + sizeof(int) + "
                      "sizeof(char); }",
                      "r"),
            0 + 5 + 6 + 2 + 1);
}

TEST(CompilerExecTest, SizeofStructRespectsAlignment) {
  EXPECT_EQ(RunAndGet("struct S { char c; int x; char d; }; int r; "
                      "void main(void) { r = sizeof(struct S); }",
                      "r"),
            6);
}

TEST(CompilerExecTest, CompoundAssignmentOnPlaces) {
  EXPECT_EQ(RunAndGet("int a[3]; int r; void main(void) { a[1] = 10; "
                      "a[1] += 5; a[1] *= 2; a[1] -= 6; "
                      "r = a[1]; }",
                      "r"),
            24);
}

TEST(CompilerExecTest, IncDecSemantics) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { int i = 5; r = i++ * 10 + i; }", "r"), 56);
  EXPECT_EQ(RunAndGet("int r; void main(void) { int i = 5; r = ++i * 10 + i; }", "r"), 66);
  EXPECT_EQ(RunAndGet("int r; void main(void) { int i = 5; r = i-- * 10 + i; }", "r"), 54);
}

TEST(CompilerExecTest, Casts) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { int x = 0x1234; r = (char)x; }", "r"), 0x34);
  EXPECT_EQ(static_cast<int16_t>(RunAndGet(
                "int r; void main(void) { int x = 0x12F0; r = (char)x; }", "r")),
            static_cast<int16_t>(static_cast<int8_t>(0xF0)));
  EXPECT_EQ(RunAndGet("int r; void main(void) { int x = 0x12F0; r = (unsigned char)x; }",
                      "r"),
            0xF0);
}

TEST(CompilerExecTest, StringLiterals) {
  EXPECT_EQ(RunAndGet("int r; void main(void) { char* s = \"AB\"; r = s[0] * 256 + s[1]; }",
                      "r"),
            'A' * 256 + 'B');
}

TEST(CompilerExecTest, GlobalScalarInitializers) {
  EXPECT_EQ(RunAndGet("int a = 5; int b = -3; unsigned c = 0xBEEF; int r; "
                      "void main(void) { r = a + b + (c == 0xBEEF ? 100 : 0); }",
                      "r"),
            102);
}

TEST(CompilerExecTest, QuicksortIterative) {
  // The paper's Quicksort benchmark shape: explicit stack, array workload.
  const char* source =
      "int data[16]; int stack[32]; int r; "
      "void sort(void) { "
      "  int top = 0; stack[top] = 0; stack[top + 1] = 15; top += 2; "
      "  while (top > 0) { "
      "    top -= 2; int lo = stack[top]; int hi = stack[top + 1]; "
      "    if (lo >= hi) continue; "
      "    int pivot = data[hi]; int i = lo - 1; "
      "    for (int j = lo; j < hi; j++) { "
      "      if (data[j] <= pivot) { i++; int t = data[i]; data[i] = data[j]; data[j] = t; } "
      "    } "
      "    i++; int t = data[i]; data[i] = data[hi]; data[hi] = t; "
      "    stack[top] = lo; stack[top + 1] = i - 1; top += 2; "
      "    stack[top] = i + 1; stack[top + 1] = hi; top += 2; "
      "  } "
      "} "
      "void main(void) { "
      "  int seed = 7; "
      "  for (int i = 0; i < 16; i++) { seed = seed * 31 + 17; data[i] = seed & 0xFF; } "
      "  sort(); "
      "  r = 1; "
      "  for (int i = 1; i < 16; i++) { if (data[i - 1] > data[i]) r = 0; } "
      "}";
  EXPECT_EQ(RunAndGet(source, "r"), 1);
}

// ---------------------------------------------------------------------------
// Model equivalence: isolation must not change program semantics.
// ---------------------------------------------------------------------------

class ModelEquivalence : public ::testing::TestWithParam<MemoryModel> {};

TEST_P(ModelEquivalence, PointerFreeProgramSameResultEverywhere) {
  const char* source =
      "int a[10]; int r; "
      "int sum(void) { int s = 0; for (int i = 0; i < 10; i++) s += a[i]; return s; } "
      "void main(void) { for (int i = 0; i < 10; i++) a[i] = i * 3; r = sum(); }";
  EXPECT_EQ(RunAndGet(source, "r", GetParam()), 135);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelEquivalence,
                         ::testing::Values(MemoryModel::kNoIsolation,
                                           MemoryModel::kFeatureLimited,
                                           MemoryModel::kMpu, MemoryModel::kSoftwareOnly));

class FullFeaturedModels : public ::testing::TestWithParam<MemoryModel> {};

TEST_P(FullFeaturedModels, PointerProgramSameResult) {
  const char* source =
      "int a[6]; int r; "
      "void main(void) { for (int i = 0; i < 6; i++) a[i] = i + 1; "
      "int* p = a; int s = 0; while (p < a + 6) { s += *p; p++; } r = s; }";
  EXPECT_EQ(RunAndGet(source, "r", GetParam()), 21);
}

TEST_P(FullFeaturedModels, RecursionWorks) {
  const char* source =
      "int r; int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); } "
      "void main(void) { r = fact(7); }";
  EXPECT_EQ(RunAndGet(source, "r", GetParam()), 5040);
}

INSTANTIATE_TEST_SUITE_P(PointerModels, FullFeaturedModels,
                         ::testing::Values(MemoryModel::kNoIsolation, MemoryModel::kMpu,
                                           MemoryModel::kSoftwareOnly));

// ---------------------------------------------------------------------------
// Isolation faults
// ---------------------------------------------------------------------------

TEST(IsolationTest, WildPointerWriteFaultsUnderSoftwareOnly) {
  Machine m;
  auto out = CompileAndRun(&m,
                           "int r; void main(void) { int* p = (int*)0x1C00; *p = 1; r = 7; }",
                           MemoryModel::kSoftwareOnly);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->run.result, StepResult::kStopped);
  EXPECT_EQ(out->run.stop_code, kStopSoftwareFault);
  EXPECT_EQ(m.hostio().fault_code(), 2);  // memory-bound check
  EXPECT_EQ(m.hostio().fault_addr(), 0x1C00);
}

TEST(IsolationTest, WildPointerWriteFaultsUnderMpuModelChecks) {
  // Below the data region: caught by the compiler's lower-bound check even
  // though the MPU itself cannot protect SRAM.
  Machine m;
  auto out = CompileAndRun(&m,
                           "int r; void main(void) { int* p = (int*)0x1C00; *p = 1; r = 7; }",
                           MemoryModel::kMpu);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->run.stop_code, kStopSoftwareFault);
}

TEST(IsolationTest, NoIsolationLetsWildWritesThrough) {
  Machine m;
  auto out = CompileAndRun(&m,
                           "int r; void main(void) { int* p = (int*)0x1C00; *p = 0xAB; r = 7; }",
                           MemoryModel::kNoIsolation);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->run.stop_code, 4);
  EXPECT_EQ(m.bus().PeekWord(0x1C00), 0xAB) << "baseline has no protection";
}

TEST(IsolationTest, ArrayOverrunFaultsUnderFeatureLimited) {
  Machine m;
  auto out = CompileAndRun(&m,
                           "int a[4]; int r; void main(void) { int i = 6; a[i] = 1; r = 7; }",
                           MemoryModel::kFeatureLimited);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->run.stop_code, kStopSoftwareFault);
  EXPECT_EQ(m.hostio().fault_code(), 1);  // index check
  EXPECT_EQ(m.hostio().fault_addr(), 6);
}

TEST(IsolationTest, NegativeIndexFaultsUnderFeatureLimited) {
  Machine m;
  auto out = CompileAndRun(&m,
                           "int a[4]; int r; void main(void) { int i = -1; a[i] = 1; r = 7; }",
                           MemoryModel::kFeatureLimited);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->run.stop_code, kStopSoftwareFault);
  EXPECT_EQ(m.hostio().fault_code(), 1);
}

TEST(IsolationTest, InBoundsAccessesNeverFault) {
  for (MemoryModel model : {MemoryModel::kFeatureLimited, MemoryModel::kMpu,
                            MemoryModel::kSoftwareOnly}) {
    Machine m;
    auto out = CompileAndRun(
        &m, "int a[8]; int r; void main(void) { for (int i = 0; i < 8; i++) a[i] = i; r = a[7]; }",
        model);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->run.stop_code, 4) << MemoryModelName(model);
    EXPECT_EQ(GlobalWord(&m, out->image, "r"), 7u) << MemoryModelName(model);
  }
}

TEST(IsolationTest, CheckStatsCountInsertedChecks) {
  Machine m;
  auto out = CompileAndRun(&m,
                           "int a[4]; int r; void main(void) { int i = 1; a[i] = 5; r = a[i]; }",
                           MemoryModel::kSoftwareOnly);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->checks.data_checks, 2);  // one per dynamic access
  EXPECT_EQ(out->checks.index_checks, 0);
  EXPECT_GE(out->checks.ret_checks, 1);
}

TEST(IsolationTest, FeatureLimitedRejectsPointerPrograms) {
  Machine m;
  auto out = CompileAndRun(&m, "int x; void main(void) { int* p = &x; *p = 1; }",
                           MemoryModel::kFeatureLimited);
  EXPECT_FALSE(out.ok());
}

TEST(IsolationTest, FeatureLimitedRejectsRecursion) {
  Machine m;
  auto out = CompileAndRun(&m, "int f(int n) { return n <= 0 ? 0 : f(n - 1); } "
                               "void main(void) { f(3); }",
                           MemoryModel::kFeatureLimited);
  EXPECT_FALSE(out.ok());
}

// ---------------------------------------------------------------------------
// Front-end rejection suite
// ---------------------------------------------------------------------------

Status CompileOnly(const std::string& source) {
  ASSIGN_OR_RETURN(std::unique_ptr<Program> program, Parse(source, "t"));
  FeatureAudit audit;
  SemaOptions options;
  return Analyze(program.get(), options, &audit);
}

TEST(FrontEndErrorsTest, RejectsBadPrograms) {
  EXPECT_FALSE(CompileOnly("void main(void) { goto out; out: ; }").ok());
  EXPECT_FALSE(CompileOnly("void main(void) { asm(\"nop\"); }").ok());
  EXPECT_FALSE(CompileOnly("void main(void) { undeclared = 1; }").ok());
  EXPECT_FALSE(CompileOnly("void main(void) { int x; x = \"str\"; }").ok());
  EXPECT_FALSE(CompileOnly("int f(int a); void main(void) { f(1, 2); }").ok());
  EXPECT_FALSE(CompileOnly("void main(void) { 5 = 6; }").ok());
  EXPECT_FALSE(CompileOnly("void main(void) { break; }").ok());
  EXPECT_FALSE(CompileOnly("void main(void) { int x; int x; }").ok());
  EXPECT_FALSE(CompileOnly("struct S { int a; }; void main(void) { struct S s; s.b = 1; }")
                   .ok());
  EXPECT_FALSE(CompileOnly("void main(void) { switch (1) { case 1: case 1: ; } }").ok());
  EXPECT_FALSE(CompileOnly("typedef int foo;").ok());
  EXPECT_FALSE(CompileOnly("int f(void);").ok());  // declared but never defined
  EXPECT_FALSE(CompileOnly("const int k = 5; void main(void) { k = 6; }").ok());
}

TEST(FrontEndErrorsTest, AuditsFeatures) {
  auto program = Parse("int x; void main(void) { int* p = &x; *p = 2; }", "t");
  ASSERT_TRUE(program.ok());
  FeatureAudit audit;
  SemaOptions options;
  ASSERT_TRUE(Analyze(program->get(), options, &audit).ok());
  EXPECT_TRUE(audit.uses_pointers);
  EXPECT_FALSE(audit.uses_recursion);

  auto rec = Parse("int f(int n) { return n <= 0 ? 0 : f(n - 1); } void main(void) { f(3); }",
                   "t");
  ASSERT_TRUE(rec.ok());
  FeatureAudit rec_audit;
  ASSERT_TRUE(Analyze(rec->get(), options, &rec_audit).ok());
  EXPECT_TRUE(rec_audit.uses_recursion);
}

TEST(FrontEndErrorsTest, MutualRecursionDetected) {
  auto program = Parse("int g(int n); int f(int n) { return g(n); } "
                       "int g(int n) { return n <= 0 ? 0 : f(n - 1); } "
                       "void main(void) { f(3); }",
                       "t");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  FeatureAudit audit;
  SemaOptions options;
  ASSERT_TRUE(Analyze(program->get(), options, &audit).ok());
  EXPECT_TRUE(audit.uses_recursion);
}


// ---------------------------------------------------------------------------
// Value forwarding (codegen peephole): identical semantics, fewer cycles.
// ---------------------------------------------------------------------------

struct ForwardingOutcome {
  uint16_t result;
  uint64_t cycles;
};

ForwardingOutcome RunWithForwarding(const std::string& source, bool forward) {
  Machine machine;
  auto program = Parse(source, "t");
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  FeatureAudit audit;
  EXPECT_TRUE(Analyze(program->get(), SemaOptions{}, &audit).ok());
  auto ir = LowerProgram(program->get(), "t");
  EXPECT_TRUE(ir.ok());
  auto checks = InsertChecks(&*ir, MemoryModel::kSoftwareOnly, BoundSymbolsFor("t"));
  EXPECT_TRUE(checks.ok());
  CodegenOptions cg{".text", ".data"};
  cg.forward_values = forward;
  auto code = GenerateAssembly(*ir, cg);
  EXPECT_TRUE(code.ok());

  Linker linker;
  auto startup = Assemble(
      "__start:\n  mov #0x8800, sp\n  call #t_f_main\n  mov #4, &0x0710\n", "s.s");
  EXPECT_TRUE(startup.ok());
  linker.AddObject(std::move(*startup));
  auto rt = Assemble(RuntimeAssembly(), "rt.s");
  EXPECT_TRUE(rt.ok());
  linker.AddObject(std::move(*rt));
  auto app = Assemble(code->assembly, "app.s");
  EXPECT_TRUE(app.ok()) << app.status().ToString();
  linker.AddObject(std::move(*app));
  BoundSymbols bounds = BoundSymbolsFor("t");
  linker.DefineAbsolute(bounds.code_lo, 0x4400);
  linker.DefineAbsolute(bounds.code_hi, 0x7000);
  linker.DefineAbsolute(bounds.data_lo, 0x7000);
  linker.DefineAbsolute(bounds.data_hi, 0x8800);
  auto image = linker.Link({{".text", 0x4400}, {".data", 0x7000}});
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  LoadImage(*image, &machine.bus());
  machine.bus().PokeWord(kResetVector, image->SymbolOrZero("__start"));
  machine.cpu().Reset();
  auto out = machine.Run(5'000'000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  ForwardingOutcome outcome;
  outcome.result = machine.bus().PeekWord(image->SymbolOrZero("t_g_r"));
  outcome.cycles = machine.cpu().cycle_count();
  return outcome;
}

TEST(ValueForwardingTest, SameResultsFewerCycles) {
  const char* kKernels[] = {
      // arithmetic + loops
      "int r; void main(void) { int acc = 0; for (int i = 0; i < 50; i++) "
      "{ acc += i * 3 - (i >> 1); } r = acc & 0x7FFF; }",
      // arrays + checked accesses
      "int a[16]; int r; void main(void) { for (int i = 0; i < 16; i++) a[i] = i * i; "
      "r = 0; for (int i = 0; i < 16; i++) r += a[i]; }",
      // calls and conditionals
      "int r; int f(int x) { return x > 10 ? x - 10 : x + 10; } "
      "void main(void) { r = 0; for (int i = 0; i < 30; i++) r += f(i); }",
  };
  for (const char* kernel : kKernels) {
    ForwardingOutcome fast = RunWithForwarding(kernel, true);
    ForwardingOutcome slow = RunWithForwarding(kernel, false);
    EXPECT_EQ(fast.result, slow.result) << kernel;
    EXPECT_LT(fast.cycles, slow.cycles) << "forwarding must save cycles: " << kernel;
  }
}

}  // namespace
}  // namespace amulet
