// OTA subsystem tests: the keyed MAC (host reference vs. the simulated
// MSP430 verifier, bit for bit), the AMFU image container (round trip +
// corrupt-input fuzzing), bl-data persistence, and the tamper model
// (checksum-fixing attacker without the key).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/mcu/machine.h"
#include "src/ota/bootloader.h"
#include "src/ota/image.h"
#include "src/ota/mac.h"

namespace amulet {
namespace {

OtaKey TestKey() {
  OtaKey key;
  key.words[0] = 0x1234;
  key.words[1] = 0xABCD;
  key.words[2] = 0x0F0F;
  key.words[3] = 0x9999;
  return key;
}

// Deterministic pseudo-random payload (xorshift; no time/seed dependence).
std::vector<uint8_t> TestPayload(size_t len, uint32_t seed) {
  std::vector<uint8_t> out(len);
  uint32_t x = seed | 1;
  for (size_t i = 0; i < len; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    out[i] = static_cast<uint8_t>(x);
  }
  return out;
}

MacTag MacOf(const OtaKey& key, const std::vector<uint8_t>& payload) {
  return ComputeOtaMac(key, payload.data(), payload.size());
}

// ---------------------------------------------------------------------------
// Host MAC properties
// ---------------------------------------------------------------------------

TEST(MacTest, DeterministicAndNonTrivial) {
  const std::vector<uint8_t> payload = TestPayload(257, 7);
  const MacTag a = MacOf(TestKey(), payload);
  const MacTag b = MacOf(TestKey(), payload);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MacTag{});  // not the all-zero tag
}

TEST(MacTest, KeySensitivity) {
  const std::vector<uint8_t> payload = TestPayload(64, 3);
  OtaKey other = TestKey();
  other.words[2] ^= 1;
  EXPECT_NE(MacOf(TestKey(), payload), MacOf(other, payload));
}

TEST(MacTest, MessageSensitivity) {
  const std::vector<uint8_t> payload = TestPayload(64, 3);
  for (size_t bit : {size_t{0}, size_t{17}, size_t{8 * 63 + 7}}) {
    std::vector<uint8_t> flipped = payload;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(MacOf(TestKey(), payload), MacOf(TestKey(), flipped)) << "bit " << bit;
  }
}

TEST(MacTest, LengthSensitivity) {
  // "xy" and "xy\0" absorb the same padded words; only the finalization
  // length distinguishes them.
  const std::vector<uint8_t> even = {'x', 'y'};
  const std::vector<uint8_t> padded = {'x', 'y', 0};
  EXPECT_NE(MacOf(TestKey(), even), MacOf(TestKey(), padded));
}

TEST(MacTest, EmptyPayloadHasTag) {
  const std::vector<uint8_t> empty;
  EXPECT_NE(MacOf(TestKey(), empty), MacTag{});
}

// ---------------------------------------------------------------------------
// Simulated verifier vs. host reference
// ---------------------------------------------------------------------------

TEST(MacSimTest, AcceptsHostTagAcrossLengthsAndWaitStates) {
  for (size_t len : {size_t{0}, size_t{1}, size_t{2}, size_t{33}, size_t{1000}}) {
    const std::vector<uint8_t> payload = TestPayload(len, static_cast<uint32_t>(len) + 11);
    const MacTag tag = MacOf(TestKey(), payload);
    for (int waits : {0, 1, 2}) {
      auto run = SimulateMacVerify(payload, tag, TestKey(), waits);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_TRUE(run->accepted) << "len " << len << " waits " << waits;
      EXPECT_GT(run->cycles, 0u);
      EXPECT_GT(run->instructions, 0u);
    }
  }
}

TEST(MacSimTest, RejectsEveryWrongTagWord) {
  const std::vector<uint8_t> payload = TestPayload(100, 5);
  const MacTag good = MacOf(TestKey(), payload);
  for (int word = 0; word < 4; ++word) {
    MacTag bad = good;
    bad.words[word] ^= 0x0100;
    auto run = SimulateMacVerify(payload, bad, TestKey(), 1);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_FALSE(run->accepted) << "word " << word;
  }
}

TEST(MacSimTest, RejectsWrongKey) {
  const std::vector<uint8_t> payload = TestPayload(64, 9);
  const MacTag tag = MacOf(TestKey(), payload);
  OtaKey other = TestKey();
  other.words[0] ^= 0x8000;
  auto run = SimulateMacVerify(payload, tag, other, 1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->accepted);
}

TEST(MacSimTest, ChunkedStagingMatchesForLargePayloads) {
  // Larger than the 30 KiB staging window, so the driver re-stages the
  // window at least twice; the tag must still match the one-shot host MAC.
  const std::vector<uint8_t> payload = TestPayload(0x3C00 * 2 + 37, 21);
  const MacTag tag = MacOf(TestKey(), payload);
  auto run = SimulateMacVerify(payload, tag, TestKey(), 1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->accepted);
}

TEST(MacSimTest, WaitStatesRaiseVerificationCost) {
  const std::vector<uint8_t> payload = TestPayload(2000, 13);
  const MacTag tag = MacOf(TestKey(), payload);
  auto fast = SimulateMacVerify(payload, tag, TestKey(), 0);
  auto slow = SimulateMacVerify(payload, tag, TestKey(), 2);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(slow->cycles, fast->cycles);
  EXPECT_EQ(slow->instructions, fast->instructions);
}

TEST(MacSimTest, CostIsDeterministic) {
  const std::vector<uint8_t> payload = TestPayload(500, 17);
  const MacTag tag = MacOf(TestKey(), payload);
  auto a = SimulateMacVerify(payload, tag, TestKey(), 1);
  auto b = SimulateMacVerify(payload, tag, TestKey(), 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cycles, b->cycles);
  EXPECT_EQ(a->instructions, b->instructions);
}

// ---------------------------------------------------------------------------
// AMFU image container
// ---------------------------------------------------------------------------

Image TestFirmwareImage() {
  Image image;
  image.chunks[0x4400] = TestPayload(96, 31);
  image.chunks[0x7000] = TestPayload(17, 32);
  image.symbols["start"] = 0x4400;  // not packed; must not affect the payload
  return image;
}

TEST(OtaImageTest, FirmwarePayloadRoundTrip) {
  const Image image = TestFirmwareImage();
  const std::vector<uint8_t> payload = EncodeFirmwarePayload(image);
  auto back = DecodeFirmwarePayload(payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->chunks, image.chunks);
  EXPECT_TRUE(back->symbols.empty());
}

TEST(OtaImageTest, FirmwareImageHashPinsLoadableBytes) {
  Image image = TestFirmwareImage();
  const uint64_t hash = FirmwareImageHash(image);
  image.symbols["extra"] = 1;  // symbols are host metadata
  EXPECT_EQ(FirmwareImageHash(image), hash);
  image.chunks[0x4400][0] ^= 1;  // loadable bytes are not
  EXPECT_NE(FirmwareImageHash(image), hash);
}

TEST(OtaImageTest, ContainerRoundTrip) {
  const OtaImage packed = PackOtaImage(TestFirmwareImage(), 7, MemoryModel::kMpu, TestKey());
  const std::vector<uint8_t> bytes = EncodeOtaImage(packed);
  auto back = DecodeOtaImage(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->firmware_version, 7u);
  EXPECT_EQ(back->model, MemoryModel::kMpu);
  EXPECT_EQ(back->mac, packed.mac);
  EXPECT_EQ(back->payload, packed.payload);
}

TEST(OtaImageTest, PackedImagePassesSimulatedVerification) {
  const OtaImage packed = PackOtaImage(TestFirmwareImage(), 2, MemoryModel::kMpu, TestKey());
  auto run = SimulateImageVerify(packed, TestKey(), 1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->accepted);
}

// Fuzz: every truncation point must decode to InvalidArgument — never crash,
// never yield a partially applied image.
TEST(OtaImageFuzzTest, EveryTruncationIsInvalidArgument) {
  const OtaImage packed = PackOtaImage(TestFirmwareImage(), 3, MemoryModel::kMpu, TestKey());
  const std::vector<uint8_t> bytes = EncodeOtaImage(packed);
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    auto result = DecodeOtaImage(cut);
    ASSERT_FALSE(result.ok()) << "length " << len;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << "length " << len;
  }
}

// Fuzz: every single-bit flip must decode to InvalidArgument (the FNV
// integrity checks catch transport corruption anywhere in the container).
TEST(OtaImageFuzzTest, EverySingleBitFlipIsInvalidArgument) {
  const OtaImage packed = PackOtaImage(TestFirmwareImage(), 3, MemoryModel::kMpu, TestKey());
  const std::vector<uint8_t> bytes = EncodeOtaImage(packed);
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::vector<uint8_t> flipped = bytes;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto result = DecodeOtaImage(flipped);
    ASSERT_FALSE(result.ok()) << "bit " << bit;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << "bit " << bit;
  }
}

TEST(OtaImageFuzzTest, TrailingBytesAreInvalidArgument) {
  const OtaImage packed = PackOtaImage(TestFirmwareImage(), 3, MemoryModel::kMpu, TestKey());
  std::vector<uint8_t> bytes = EncodeOtaImage(packed);
  bytes.push_back(0);
  auto result = DecodeOtaImage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Tamper model: attacker fixes the checksums but lacks the key
// ---------------------------------------------------------------------------

TEST(OtaTamperTest, TamperedImageDecodesButFailsMacVerification) {
  const OtaImage packed = PackOtaImage(TestFirmwareImage(), 4, MemoryModel::kMpu, TestKey());
  const std::vector<uint8_t> bytes = EncodeOtaImage(packed);
  // Bit 3 lands in the MAC; bit 64 + 77 lands in the payload.
  for (size_t bit : {size_t{3}, size_t{64 + 77}}) {
    auto tampered = TamperOtaImage(bytes, bit);
    ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();
    auto decoded = DecodeOtaImage(*tampered);
    ASSERT_TRUE(decoded.ok()) << "checksums were re-fixed, decode must succeed";
    auto run = SimulateImageVerify(*decoded, TestKey(), 1);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_FALSE(run->accepted) << "bit " << bit;
  }
}

TEST(OtaTamperTest, OutOfRangeBitIsRejected) {
  const OtaImage packed = PackOtaImage(TestFirmwareImage(), 4, MemoryModel::kMpu, TestKey());
  const std::vector<uint8_t> bytes = EncodeOtaImage(packed);
  auto result = TamperOtaImage(bytes, 8 * (8 + packed.payload.size()));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// bl-data record
// ---------------------------------------------------------------------------

TEST(BlDataTest, MissingRecordIsNotFound) {
  Machine machine;
  auto result = ReadBlData(machine.bus());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(BlDataTest, RoundTripAndPersistsAcrossReset) {
  Machine machine;
  BlData bl;
  bl.active_bank = 1;
  bl.attempt_count = 2;
  bl.rollback_count = 3;
  bl.current_version = 0x00010002;
  bl.prior_version = 0x00010001;
  WriteBlData(&machine.bus(), bl);
  auto back = ReadBlData(machine.bus());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, bl);
  machine.Reset();  // InfoMem is FRAM: the record survives a PUC
  auto after_reset = ReadBlData(machine.bus());
  ASSERT_TRUE(after_reset.ok());
  EXPECT_EQ(*after_reset, bl);
}

}  // namespace
}  // namespace amulet
