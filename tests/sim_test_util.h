// Shared helpers for simulator-level tests: assemble a snippet, load it at
// the start of FRAM, point the reset vector at `start`, and run.
#ifndef TESTS_SIM_TEST_UTIL_H_
#define TESTS_SIM_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "src/asm/assembler.h"
#include "src/asm/linker.h"
#include "src/mcu/machine.h"

namespace amulet {

// Assembles and links `source` with .text at kFramStart and .data at 0x7000.
// The program must define a `start` label. Does not run it.
inline Image AssembleAndLoad(Machine* machine, const std::string& source) {
  auto object = Assemble(source, "test.s");
  EXPECT_TRUE(object.ok()) << object.status().ToString();
  Linker linker;
  linker.AddObject(std::move(*object));
  auto image = linker.Link({{".text", kFramStart}, {".data", 0x7000}});
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  LoadImage(*image, &machine->bus());
  EXPECT_TRUE(image->HasSymbol("start")) << "test program must define 'start'";
  machine->bus().PokeWord(kResetVector, image->SymbolOrZero("start"));
  machine->cpu().Reset();
  return *image;
}

// Convenience: assemble, load, and run until STOP/halt (budget-limited).
inline Cpu::RunOutcome RunAsm(Machine* machine, const std::string& source,
                              uint64_t max_cycles = 100000) {
  AssembleAndLoad(machine, source);
  return machine->Run(max_cycles);
}

}  // namespace amulet

#endif  // TESTS_SIM_TEST_UTIL_H_
