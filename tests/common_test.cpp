#include <gtest/gtest.h>

#include "src/common/status.h"
#include "src/common/strings.h"

namespace amulet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad foo");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad foo");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(LinkError("x").code(), StatusCode::kLinkError);
  EXPECT_EQ(RuntimeFaultError("x").code(), StatusCode::kRuntimeFault);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> r = OkStatus();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubled(Result<int> in) {
  ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(InternalError("boom")).status().code(), StatusCode::kInternal);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, Hex) {
  EXPECT_EQ(HexWord(0x4400), "0x4400");
  EXPECT_EQ(HexWord(0x000F), "0x000f");
  EXPECT_EQ(HexByte(0xAB), "0xab");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y\t"), "x y");
  EXPECT_EQ(Trim("\r\n"), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_TRUE(EqualsIgnoreCase("MoV", "mov"));
  EXPECT_FALSE(EqualsIgnoreCase("mov", "movx"));
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("0x12", "0x"));
  EXPECT_FALSE(StartsWith("x", "0x"));
  EXPECT_TRUE(EndsWith("file.amc", ".amc"));
}

TEST(StringsTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567890ull), "1,234,567,890");
}

}  // namespace
}  // namespace amulet
