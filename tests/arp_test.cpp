// ARP (profiler) and energy-model unit tests, plus sensor-synthesizer sanity.
#include <gtest/gtest.h>

#include "src/apps/app_sources.h"
#include "src/arp/arp.h"
#include "src/os/sensors.h"

namespace amulet {
namespace {

// ---------------------------------------------------------------------------
// Energy model arithmetic
// ---------------------------------------------------------------------------

TEST(EnergyModelTest, ChargePerCycle) {
  EnergyModel model;
  model.cpu_mhz = 16;
  model.active_ua_per_mhz = 300;
  model.battery_mah = 110;
  // 300 uA/MHz * 16 MHz = 4.8 mA; at 16e6 cycles/s -> 3e-10 C per cycle.
  EXPECT_NEAR(model.ChargePerCycle(), 3e-10, 1e-13);
  // 110 mAh = 396 C.
  EXPECT_NEAR(model.BatteryCharge(), 396.0, 1e-9);
}

TEST(EnergyModelTest, BatteryImpactScalesLinearly) {
  EnergyModel model;
  const double one = model.BatteryImpactPercent(1e9);
  EXPECT_NEAR(model.BatteryImpactPercent(3e9), 3 * one, 1e-9);
  EXPECT_GT(one, 0);
  // With the defaults, 1 Gcycle/week is well under the paper's 0.5% band.
  EXPECT_LT(one, 0.2);
}

TEST(EnergyModelTest, PaperBandSanity) {
  // The paper's Figure 2 shows up to ~3 Gcycles/week staying below 0.5%
  // battery impact; our defaults must reproduce that relationship.
  EnergyModel model;
  EXPECT_LT(model.BatteryImpactPercent(3e9), 0.5);
  EXPECT_GT(model.BatteryImpactPercent(8e9), 0.5);
}

// ---------------------------------------------------------------------------
// Profiler behaviour
// ---------------------------------------------------------------------------

TEST(ArpTest, ProfileCoversSubscribedHandlers) {
  const AppSpec* pedometer = nullptr;
  for (const AppSpec& app : AmuletAppSuite()) {
    if (app.name == "pedometer") {
      pedometer = &app;
    }
  }
  ASSERT_NE(pedometer, nullptr);
  ArpOptions options;
  options.samples_per_event = 10;
  auto profile = ProfileApp(*pedometer, MemoryModel::kMpu, options);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_EQ(profile->handlers.count(EventType::kAccel), 1u);
  const HandlerProfile& accel = profile->handlers.at(EventType::kAccel);
  EXPECT_EQ(accel.samples, 10);
  EXPECT_GT(accel.mean_cycles, 100);
  EXPECT_GT(accel.mean_data_accesses, 0);
  EXPECT_GT(profile->cycles_per_week, 0);
}

TEST(ArpTest, ProfileIsDeterministic) {
  const AppSpec& app = AmuletAppSuite()[1];  // Clock
  ArpOptions options;
  options.samples_per_event = 5;
  auto first = ProfileApp(app, MemoryModel::kSoftwareOnly, options);
  auto second = ProfileApp(app, MemoryModel::kSoftwareOnly, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->cycles_per_week, second->cycles_per_week);
}

TEST(ArpTest, IsolatedModelsCostMoreThanBaseline) {
  const AppSpec* fall = nullptr;
  for (const AppSpec& app : AmuletAppSuite()) {
    if (app.name == "falldetection") {
      fall = &app;
    }
  }
  ASSERT_NE(fall, nullptr);
  ArpOptions options;
  options.samples_per_event = 10;
  auto baseline = ProfileApp(*fall, MemoryModel::kNoIsolation, options);
  ASSERT_TRUE(baseline.ok());
  for (MemoryModel model : {MemoryModel::kFeatureLimited, MemoryModel::kMpu,
                            MemoryModel::kSoftwareOnly}) {
    auto profile = ProfileApp(*fall, model, options);
    ASSERT_TRUE(profile.ok()) << MemoryModelName(model);
    OverheadResult overhead = ComputeOverhead(*baseline, *profile, options.energy);
    EXPECT_GT(overhead.overhead_cycles_per_week, 0) << MemoryModelName(model);
    EXPECT_GT(overhead.battery_impact_percent, 0) << MemoryModelName(model);
  }
}

TEST(ArpTest, OverheadClampsAtZero) {
  AppProfile cheap;
  cheap.cycles_per_week = 100;
  AppProfile expensive;
  expensive.cycles_per_week = 500;
  EnergyModel energy;
  // "isolated" cheaper than baseline (measurement noise): clamp, don't go
  // negative.
  OverheadResult overhead = ComputeOverhead(expensive, cheap, energy);
  EXPECT_EQ(overhead.overhead_cycles_per_week, 0);
}

TEST(ArpTest, RenderersProduceText) {
  AppProfile profile;
  profile.app_name = "demo";
  profile.model = MemoryModel::kMpu;
  profile.handlers[EventType::kTimer] = {100.0, 5.0, 1.0, 3};
  profile.cycles_per_week = 2.5e9;
  std::string text = RenderProfile(profile);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("on_timer"), std::string::npos);
  EXPECT_NE(text.find("2.500"), std::string::npos);

  std::vector<OverheadResult> rows = {{"demo", MemoryModel::kMpu, 1e9, 0.08}};
  std::string table = RenderOverheadTable(rows);
  EXPECT_NE(table.find("MPU"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sensor synthesizers
// ---------------------------------------------------------------------------

TEST(SensorTest, RestIsNearOneG) {
  SensorSuite sensors(42);
  sensors.set_mode(ActivityMode::kRest);
  for (uint64_t t = 0; t < 2000; t += 50) {
    AccelSample s = sensors.Accel(t);
    int mag = std::abs(s.x_mg) + std::abs(s.y_mg) + std::abs(s.z_mg);
    EXPECT_GT(mag, 900) << t;
    EXPECT_LT(mag, 1100) << t;
  }
}

TEST(SensorTest, WalkingOscillates) {
  SensorSuite sensors(42);
  sensors.set_mode(ActivityMode::kWalking);
  int16_t min_x = 32767;
  int16_t max_x = -32768;
  for (uint64_t t = 0; t < 3000; t += 25) {
    AccelSample s = sensors.Accel(t);
    min_x = std::min(min_x, s.x_mg);
    max_x = std::max(max_x, s.x_mg);
  }
  EXPECT_GT(max_x - min_x, 250) << "walking must swing the axes";
}

TEST(SensorTest, FallHasFreefallThenImpact) {
  SensorSuite sensors(42);
  sensors.set_mode(ActivityMode::kFalling);
  bool saw_freefall = false;
  bool saw_impact = false;
  for (uint64_t t = 0; t < 600; t += 20) {
    AccelSample s = sensors.Accel(t);
    int mag = std::abs(s.x_mg) + std::abs(s.y_mg) + std::abs(s.z_mg);
    if (mag < 300) {
      saw_freefall = true;
    }
    if (mag > 2500) {
      saw_impact = true;
    }
  }
  EXPECT_TRUE(saw_freefall);
  EXPECT_TRUE(saw_impact);
}

TEST(SensorTest, HeartRateTracksActivity) {
  SensorSuite sensors(42);
  sensors.set_mode(ActivityMode::kRest);
  int rest = sensors.HeartRateBpm(1000);
  sensors.set_mode(ActivityMode::kRunning);
  int running = sensors.HeartRateBpm(1000);
  EXPECT_GT(running, rest + 30);
  EXPECT_GT(rest, 50);
  EXPECT_LT(running, 200);
}

TEST(SensorTest, BatteryDischargesOverAWeek) {
  SensorSuite sensors(42);
  EXPECT_EQ(sensors.BatteryPercent(0), 100);
  EXPECT_LT(sensors.BatteryPercent(3ull * 24 * 3600 * 1000), 70);
  EXPECT_GE(sensors.BatteryPercent(6ull * 24 * 3600 * 1000), 0);
}

TEST(SensorTest, LightFollowsDayNight) {
  SensorSuite sensors(42);
  const uint64_t kHour = 3600ull * 1000;
  EXPECT_LT(sensors.LightLux(2 * kHour), 100) << "2am is dark";
  EXPECT_GT(sensors.LightLux(12 * kHour), 4000) << "noon is bright";
}

TEST(SensorTest, TempInPhysiologicalRange) {
  SensorSuite sensors(42);
  for (uint64_t t = 0; t < 24ull * 3600 * 1000; t += 3600 * 1000) {
    int temp = sensors.TempCentiC(t);
    EXPECT_GT(temp, 3100) << "above 31 C";
    EXPECT_LT(temp, 3600) << "below 36 C";
  }
}

TEST(SensorTest, NoiseIsDeterministicPerSeed) {
  SensorSuite a(7);
  SensorSuite b(7);
  SensorSuite c(8);
  a.set_mode(ActivityMode::kWalking);
  b.set_mode(ActivityMode::kWalking);
  c.set_mode(ActivityMode::kWalking);
  AccelSample sa = a.Accel(123);
  AccelSample sb = b.Accel(123);
  AccelSample sc = c.Accel(123);
  EXPECT_EQ(sa.x_mg, sb.x_mg);
  EXPECT_EQ(sa.y_mg, sb.y_mg);
  EXPECT_TRUE(sa.x_mg != sc.x_mg || sa.y_mg != sc.y_mg || sa.z_mg != sc.z_mg);
}

}  // namespace
}  // namespace amulet
