// OTA campaign tests: staged rollout determinism across thread counts,
// checkpoint/resume mid-campaign, fleet-wide rejection of tampered images,
// watchdog-storm rollback of a genuinely bad update, canary-stage aborts,
// and the AMFC v2 container (firmware-hash binding, whole-file checksum,
// version-1 migration error, exhaustive corruption sweep).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/aft/aft.h"
#include "src/apps/app_sources.h"
#include "src/fleet/campaign.h"
#include "src/fleet/checkpoint.h"
#include "src/fleet/fleet.h"
#include "src/ota/image.h"

namespace amulet {
namespace {

// A small, fast campaign: 12 devices on one-app firmware, short workload and
// health windows. The update is a pure version bump (same app list), which
// still exercises pack -> stage -> verify -> activate -> health end to end.
CampaignConfig SmallCampaign(int jobs) {
  CampaignConfig config;
  config.fleet.device_count = 12;
  config.fleet.apps = {"pedometer"};
  config.fleet.model = MemoryModel::kMpu;
  config.fleet.fleet_seed = 0x0DA7;
  config.fleet.sim_ms = 200;
  config.fleet.jobs = jobs;
  config.health_ms = 200;
  config.from_version = 3;
  config.to_version = 4;
  return config;
}

// Packs the container the campaign would deploy for `apps`, so tests can
// tamper with it and hand RunCampaign an image_override.
std::vector<uint8_t> PackedImageFor(const std::vector<std::string>& apps,
                                    MemoryModel model, uint32_t version,
                                    const OtaKey& key) {
  std::vector<AppSource> sources;
  for (const std::string& name : apps) {
    for (const AppSpec& app : AmuletAppSuite()) {
      if (app.name == name) {
        sources.push_back({app.name, app.source});
      }
    }
    if (name == CrasherApp().name) {
      sources.push_back({CrasherApp().name, CrasherApp().source});
    }
  }
  AftOptions options;
  options.model = model;
  auto firmware = BuildFirmware(sources, options);
  EXPECT_TRUE(firmware.ok()) << firmware.status().ToString();
  return EncodeOtaImage(PackOtaImage(firmware->image, version, model, key));
}

TEST(CampaignTest, HappyPathUpdatesEveryDevice) {
  auto report = RunCampaign(SmallCampaign(1));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->aborted_stage, -1);
  ASSERT_EQ(report->devices.size(), 12u);
  for (const CampaignDeviceRow& row : report->devices) {
    EXPECT_EQ(row.outcome, OtaOutcome::kUpdated);
    EXPECT_EQ(row.firmware_version, 4u);
    EXPECT_GT(row.verify_cycles, 0u) << "MAC verification must cost simulated cycles";
    EXPECT_GT(row.stats.cycles, 0u);
  }
  // Default staging is 5% -> 50% -> 100%; stage sizes must cover the fleet.
  ASSERT_EQ(report->stages.size(), 3u);
  EXPECT_EQ(report->stages[0].device_count, 1);  // ceil(12 * 5%)
  EXPECT_EQ(report->stages[1].device_count, 5);  // up to ceil(12 * 50%)
  EXPECT_EQ(report->stages[2].device_count, 6);  // the rest
  for (const CampaignStageResult& stage : report->stages) {
    EXPECT_EQ(stage.rejected, 0);
    EXPECT_EQ(stage.rolled_back, 0);
    EXPECT_FALSE(stage.aborted_after);
  }
  // Version skew and outcome counters in the streaming registry.
  EXPECT_EQ(report->metrics.counter("campaign.updated"), 12u);
  EXPECT_EQ(report->metrics.counter("campaign.version.4"), 12u);
  EXPECT_EQ(report->metrics.counter("campaign.version.3"), 0u);
  EXPECT_GT(report->metrics.counter("campaign.verify_cycles"), 0u);
  const LogHistogram* verify = report->metrics.histogram("device.verify_cycles");
  ASSERT_NE(verify, nullptr);
  EXPECT_EQ(verify->count, 12u);
}

TEST(CampaignTest, DigestIsThreadCountIndependent) {
  auto serial = RunCampaign(SmallCampaign(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = RunCampaign(SmallCampaign(4));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_FALSE(CampaignDigest(*serial).empty());
  EXPECT_EQ(CampaignDigest(*serial), CampaignDigest(*parallel));
}

TEST(CampaignTest, KillAndResumeReproducesDigest) {
  const std::string path = "campaign_ckpt_resume_test.bin";
  std::remove(path.c_str());

  auto uninterrupted = RunCampaign(SmallCampaign(1));
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  const std::string want = CampaignDigest(*uninterrupted);

  // Kill mid-campaign: abort after 5 completions, which lands inside stage 2
  // of the default 5/50/100 staging for 12 devices.
  CampaignConfig killed = SmallCampaign(1);
  killed.fleet.checkpoint_path = path;
  killed.fleet.checkpoint_every_devices = 1;
  killed.fleet.abort_after_devices = 5;
  auto cancelled = RunCampaign(killed);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  // Resume at a different thread count; digest must match byte for byte.
  CampaignConfig resume = SmallCampaign(4);
  resume.fleet.checkpoint_path = path;
  auto resumed = ResumeCampaign(resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->resumed_devices, 5);
  EXPECT_EQ(CampaignDigest(*resumed), want);

  // Resuming the now-complete checkpoint is a no-op with the same digest.
  auto again = ResumeCampaign(resume);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->resumed_devices, 12);
  EXPECT_EQ(CampaignDigest(*again), want);
  std::remove(path.c_str());
}

// Acceptance: a tampered image (payload bit flipped, transport checksums
// re-fixed by the attacker) decodes cleanly but is rejected by the simulated
// bootloader on EVERY device — zero devices end up on the bad version.
TEST(CampaignTest, TamperedImageIsRejectedFleetWide) {
  CampaignConfig config = SmallCampaign(4);
  config.stages = {{100, 1.0}};  // let every device attempt, no canary abort
  const std::vector<uint8_t> clean = PackedImageFor(
      config.fleet.apps, config.fleet.model, config.to_version, config.key);
  auto tampered = TamperOtaImage(clean, 64 + 129);  // a payload bit
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();
  config.image_override = *tampered;

  auto report = RunCampaign(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const CampaignDeviceRow& row : report->devices) {
    EXPECT_EQ(row.outcome, OtaOutcome::kRejected);
    EXPECT_EQ(row.firmware_version, 3u) << "no device may run the tampered version";
    EXPECT_GT(row.verify_cycles, 0u);
  }
  EXPECT_EQ(report->metrics.counter("campaign.rejected"), 12u);
  EXPECT_EQ(report->metrics.counter("campaign.version.4"), 0u);
  EXPECT_EQ(report->metrics.counter("campaign.version.3"), 12u);

  // A flipped MAC bit is equally dead.
  auto mac_tampered = TamperOtaImage(clean, 7);
  ASSERT_TRUE(mac_tampered.ok()) << mac_tampered.status().ToString();
  config.image_override = *mac_tampered;
  auto report2 = RunCampaign(config);
  ASSERT_TRUE(report2.ok()) << report2.status().ToString();
  EXPECT_EQ(report2->metrics.counter("campaign.rejected"), 12u);
  EXPECT_EQ(report2->metrics.counter("campaign.version.4"), 0u);
}

// With the default canary staging, a tampered image never makes it past
// stage 0: the canary's 100% failure rate trips the threshold and the rest
// of the fleet is never touched.
TEST(CampaignTest, CanaryStageAbortsBadRollout) {
  CampaignConfig config = SmallCampaign(1);
  config.fleet.device_count = 40;
  const std::vector<uint8_t> clean = PackedImageFor(
      config.fleet.apps, config.fleet.model, config.to_version, config.key);
  auto tampered = TamperOtaImage(clean, 3);
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();
  config.image_override = *tampered;

  auto report = RunCampaign(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->aborted_stage, 0);
  ASSERT_EQ(report->stages.size(), 1u);
  EXPECT_TRUE(report->stages[0].aborted_after);
  EXPECT_EQ(report->stages[0].device_count, 2);  // ceil(40 * 5%)
  EXPECT_EQ(report->stages[0].rejected, 2);
  int rejected = 0;
  int untouched = 0;
  for (const CampaignDeviceRow& row : report->devices) {
    if (row.outcome == OtaOutcome::kRejected) {
      ++rejected;
    } else {
      EXPECT_EQ(row.outcome, OtaOutcome::kNotAttempted);
      ++untouched;
    }
    EXPECT_EQ(row.firmware_version, 3u);
  }
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(untouched, 38);
  EXPECT_EQ(report->metrics.counter("campaign.not_attempted"), 38u);
  EXPECT_EQ(report->metrics.counter("campaign.version.3"), 40u);
}

// A genuinely bad update: an authentic image whose firmware faults every
// timer tick. Every device accepts the MAC, activates, storms the watchdog
// inside the health window, and rolls back to the prior version.
TEST(CampaignTest, WatchdogStormRollsBackBadUpdate) {
  CampaignConfig config = SmallCampaign(4);
  config.fleet.device_count = 8;
  config.to_apps = {"clock", "crasher"};
  config.health_ms = 800;  // crasher faults every 100 ms
  config.storm_threshold = 3;
  config.stages = {{100, 1.0}};

  auto report = RunCampaign(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const CampaignDeviceRow& row : report->devices) {
    EXPECT_EQ(row.outcome, OtaOutcome::kRolledBack);
    EXPECT_EQ(row.firmware_version, 3u) << "rollback must restore the prior version";
    EXPECT_GE(row.stats.watchdog_resets, 3u);
  }
  EXPECT_EQ(report->metrics.counter("campaign.rolled_back"), 8u);
  EXPECT_EQ(report->metrics.counter("campaign.version.4"), 0u);
  EXPECT_EQ(report->metrics.counter("campaign.version.3"), 8u);
  EXPECT_GT(report->metrics.counter("fleet.watchdog_resets"), 0u);
}

// The default canary staging contains a storm of rollbacks just as it
// contains rejections.
TEST(CampaignTest, CanaryCatchesStormingUpdate) {
  CampaignConfig config = SmallCampaign(1);
  config.fleet.device_count = 20;
  config.to_apps = {"clock", "crasher"};
  config.health_ms = 800;
  auto report = RunCampaign(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->aborted_stage, 0);
  ASSERT_EQ(report->stages.size(), 1u);
  EXPECT_EQ(report->stages[0].rolled_back, report->stages[0].device_count);
  EXPECT_EQ(report->metrics.counter("campaign.version.4"), 0u);
}

TEST(CampaignTest, ValidatesConfig) {
  CampaignConfig same_version = SmallCampaign(1);
  same_version.to_version = same_version.from_version;
  EXPECT_EQ(RunCampaign(same_version).status().code(), StatusCode::kInvalidArgument);

  CampaignConfig not_increasing = SmallCampaign(1);
  not_increasing.stages = {{50, 0.25}, {50, 0.25}, {100, 0.25}};
  EXPECT_EQ(RunCampaign(not_increasing).status().code(), StatusCode::kInvalidArgument);

  CampaignConfig not_to_100 = SmallCampaign(1);
  not_to_100.stages = {{5, 0.25}, {50, 0.25}};
  EXPECT_EQ(RunCampaign(not_to_100).status().code(), StatusCode::kInvalidArgument);

  CampaignConfig bad_threshold = SmallCampaign(1);
  bad_threshold.stages = {{100, 1.5}};
  EXPECT_EQ(RunCampaign(bad_threshold).status().code(), StatusCode::kInvalidArgument);

  CampaignConfig bad_storm = SmallCampaign(1);
  bad_storm.storm_threshold = 0;
  EXPECT_EQ(RunCampaign(bad_storm).status().code(), StatusCode::kInvalidArgument);
}

TEST(CampaignTest, RolloutOrderIsSeededPermutation) {
  const std::vector<int> a = CampaignRolloutOrder(100, 1);
  const std::vector<int> b = CampaignRolloutOrder(100, 1);
  const std::vector<int> c = CampaignRolloutOrder(100, 2);
  EXPECT_EQ(a, b) << "same seed, same order";
  EXPECT_NE(a, c) << "different seed, different order";
  std::vector<bool> seen(100, false);
  for (int id : a) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, 100);
    EXPECT_FALSE(seen[static_cast<size_t>(id)]);
    seen[static_cast<size_t>(id)] = true;
  }
}

TEST(CampaignTest, RenderMentionsStagesAndOutcomes) {
  auto report = RunCampaign(SmallCampaign(1));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string text = RenderCampaignReport(*report);
  EXPECT_NE(text.find("v3 -> v4"), std::string::npos) << text;
  EXPECT_NE(text.find("12 updated"), std::string::npos) << text;
  EXPECT_NE(text.find("version skew"), std::string::npos) << text;
  EXPECT_NE(text.find("MAC verification"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Checkpoint-kind and firmware-hash binding

TEST(CampaignTest, ResumeRejectsMismatchedConfigAndKind) {
  const std::string path = "campaign_ckpt_mismatch_test.bin";
  std::remove(path.c_str());

  CampaignConfig killed = SmallCampaign(1);
  killed.fleet.checkpoint_path = path;
  killed.fleet.checkpoint_every_devices = 1;
  killed.fleet.abort_after_devices = 2;
  ASSERT_EQ(RunCampaign(killed).status().code(), StatusCode::kCancelled);

  // Different campaign parameters cannot resume this checkpoint.
  CampaignConfig other = SmallCampaign(1);
  other.fleet.checkpoint_path = path;
  other.to_version = 9;
  EXPECT_EQ(ResumeCampaign(other).status().code(), StatusCode::kInvalidArgument);

  // Neither can a different deployed image (tampering changes the image FNV
  // that the campaign canonical folds in).
  CampaignConfig other_image = SmallCampaign(1);
  other_image.fleet.checkpoint_path = path;
  const std::vector<uint8_t> clean =
      PackedImageFor(other_image.fleet.apps, other_image.fleet.model,
                     other_image.to_version, other_image.key);
  auto tampered = TamperOtaImage(clean, 0);
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();
  other_image.image_override = *tampered;
  EXPECT_EQ(ResumeCampaign(other_image).status().code(), StatusCode::kInvalidArgument);

  // A campaign checkpoint is not resumable as a plain fleet run.
  FleetConfig as_fleet = SmallCampaign(1).fleet;
  as_fleet.checkpoint_path = path;
  EXPECT_EQ(ResumeFleet(as_fleet).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());

  // And a fleet checkpoint is not resumable as a campaign.
  FleetConfig fleet_config = SmallCampaign(1).fleet;
  fleet_config.checkpoint_path = path;
  fleet_config.checkpoint_every_devices = 1;
  fleet_config.abort_after_devices = 2;
  ASSERT_EQ(RunFleet(fleet_config).status().code(), StatusCode::kCancelled);
  CampaignConfig as_campaign = SmallCampaign(1);
  as_campaign.fleet.checkpoint_path = path;
  EXPECT_EQ(ResumeCampaign(as_campaign).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// The firmware image hash is part of the config identity: same config +
// different firmware bytes = different hash, and the canonical string shows
// the fingerprint for diagnostics.
TEST(CheckpointV2Test, ConfigHashBindsFirmwareImage) {
  FleetConfig config;
  config.apps = {"clock"};
  EXPECT_NE(FleetConfigHash(config, 0x1111), FleetConfigHash(config, 0x2222));
  EXPECT_EQ(FleetConfigHash(config, 0x1111), FleetConfigHash(config, 0x1111));
  EXPECT_NE(FleetConfigCanonical(config, 0x1111).find("fw=0000000000001111"),
            std::string::npos)
      << FleetConfigCanonical(config, 0x1111);
}

// A compact checkpoint for exhaustive corruption sweeps (a real template
// snapshot is tens of kilobytes; decode never interprets its contents, so a
// stub keeps the sweep fast while covering every container code path).
FleetCheckpoint TinyCheckpoint(FleetCheckpointKind kind) {
  FleetCheckpoint cp;
  cp.kind = kind;
  cp.config_hash = 0x1234567890ABCDEFull;
  cp.config_text = "devices=4;apps=clock";
  cp.template_snapshot.bytes = {0xAA, 0xBB, 0xCC};
  cp.metrics.Add("fleet.devices", 2);
  cp.metrics.Observe("device.cycles", 999);
  cp.device_count = 4;
  cp.completed = {true, false, true, false};
  DeviceStats d0;
  d0.device_id = 0;
  d0.cycles = 111;
  d0.watchdog_resets = 2;
  DeviceStats d2;
  d2.device_id = 2;
  d2.cycles = 222;
  cp.devices = {d0, d2};
  if (kind == FleetCheckpointKind::kCampaign) {
    cp.campaign_devices = {{0, 1, 7, 5000}, {2, 3, 6, 5100}};
  }
  return cp;
}

TEST(CheckpointV2Test, CampaignRecordsRoundTrip) {
  const FleetCheckpoint cp = TinyCheckpoint(FleetCheckpointKind::kCampaign);
  auto decoded = DecodeFleetCheckpoint(EncodeFleetCheckpoint(cp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, FleetCheckpointKind::kCampaign);
  ASSERT_EQ(decoded->campaign_devices.size(), 2u);
  EXPECT_EQ(decoded->campaign_devices[0].device_id, 0);
  EXPECT_EQ(decoded->campaign_devices[0].outcome, 1);
  EXPECT_EQ(decoded->campaign_devices[0].firmware_version, 7u);
  EXPECT_EQ(decoded->campaign_devices[0].verify_cycles, 5000u);
  EXPECT_EQ(decoded->campaign_devices[1].outcome, 3);
  ASSERT_EQ(decoded->devices.size(), 2u);
  EXPECT_EQ(decoded->devices[0].watchdog_resets, 2u);
}

TEST(CheckpointV2Test, VersionOneFilesGetAClearMigrationError) {
  std::vector<uint8_t> bytes =
      EncodeFleetCheckpoint(TinyCheckpoint(FleetCheckpointKind::kFleet));
  bytes[4] = 1;  // rewrite the u32 version field to 1
  bytes[5] = bytes[6] = bytes[7] = 0;
  auto decoded = DecodeFleetCheckpoint(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("version 1"), std::string::npos)
      << decoded.status().message();
  EXPECT_NE(decoded.status().message().find("re-run without --resume"),
            std::string::npos)
      << decoded.status().message();
}

// Satellite: every truncation point and every single-bit flip of a valid
// AMFC container must decode to InvalidArgument — never crash, never
// partially apply. The whole-file FNV trailer is what makes the bit-flip
// half of this sweep hold unconditionally.
TEST(CheckpointV2FuzzTest, EveryTruncationIsInvalidArgument) {
  for (FleetCheckpointKind kind :
       {FleetCheckpointKind::kFleet, FleetCheckpointKind::kCampaign}) {
    const std::vector<uint8_t> bytes = EncodeFleetCheckpoint(TinyCheckpoint(kind));
    for (size_t len = 0; len < bytes.size(); ++len) {
      const std::vector<uint8_t> truncated(bytes.begin(),
                                           bytes.begin() + static_cast<long>(len));
      auto decoded = DecodeFleetCheckpoint(truncated);
      ASSERT_FALSE(decoded.ok()) << "length " << len;
      ASSERT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
          << "length " << len << ": " << decoded.status().ToString();
    }
  }
}

TEST(CheckpointV2FuzzTest, EverySingleBitFlipIsInvalidArgument) {
  for (FleetCheckpointKind kind :
       {FleetCheckpointKind::kFleet, FleetCheckpointKind::kCampaign}) {
    const std::vector<uint8_t> bytes = EncodeFleetCheckpoint(TinyCheckpoint(kind));
    for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
      std::vector<uint8_t> damaged = bytes;
      damaged[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      auto decoded = DecodeFleetCheckpoint(damaged);
      ASSERT_FALSE(decoded.ok()) << "bit " << bit;
      ASSERT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
          << "bit " << bit << ": " << decoded.status().ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Watchdog-reset metric in plain fleet runs (satellite of the OTA work)

TEST(FleetWatchdogTest, WatchdogResetsSurfaceInMetrics) {
  FleetConfig config;
  config.device_count = 4;
  config.apps = {"clock", "crasher"};
  config.model = MemoryModel::kMpu;
  config.fleet_seed = 77;
  config.sim_ms = 600;  // crasher faults every 100 ms
  config.jobs = 1;
  auto report = RunFleet(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->aggregate.total_watchdog_resets, 0u);
  EXPECT_EQ(report->metrics.counter("fleet.watchdog_resets"),
            report->aggregate.total_watchdog_resets);
  const LogHistogram* h = report->metrics.histogram("device.watchdog_resets");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  for (const DeviceStats& d : report->devices) {
    EXPECT_GT(d.watchdog_resets, 0u);
  }
}

// ---------------------------------------------------------------------------
// Acceptance scale test: a seeded 1000-device staged campaign is digest-
// identical at --jobs 1 and --jobs N, and a kill + resume reproduces it.

CampaignConfig ScaleCampaign(int jobs) {
  CampaignConfig config;
  config.fleet.device_count = 1000;
  config.fleet.apps = {"pedometer"};
  config.fleet.model = MemoryModel::kMpu;
  config.fleet.fleet_seed = 0x5CA1E;
  config.fleet.sim_ms = 50;
  config.fleet.jobs = jobs;
  config.health_ms = 20;
  config.rollout_seed = 42;
  return config;
}

TEST(CampaignScaleTest, ThousandDeviceStagedRolloutIsDeterministic) {
  auto serial = RunCampaign(ScaleCampaign(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const std::string want = CampaignDigest(*serial);
  EXPECT_EQ(serial->metrics.counter("campaign.updated"), 1000u);
  ASSERT_EQ(serial->stages.size(), 3u);
  EXPECT_EQ(serial->stages[0].device_count, 50);   // 5% canary
  EXPECT_EQ(serial->stages[1].device_count, 450);  // to 50%
  EXPECT_EQ(serial->stages[2].device_count, 500);  // to 100%

  auto parallel = RunCampaign(ScaleCampaign(0));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(CampaignDigest(*parallel), want);

  const std::string path = "campaign_ckpt_scale_test.bin";
  std::remove(path.c_str());
  CampaignConfig killed = ScaleCampaign(0);
  killed.fleet.checkpoint_path = path;
  killed.fleet.abort_after_devices = 137;  // dies inside stage 2
  ASSERT_EQ(RunCampaign(killed).status().code(), StatusCode::kCancelled);
  CampaignConfig resume = ScaleCampaign(0);
  resume.fleet.checkpoint_path = path;
  auto resumed = ResumeCampaign(resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_GE(resumed->resumed_devices, 137);
  EXPECT_EQ(CampaignDigest(*resumed), want);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amulet
