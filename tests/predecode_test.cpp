// Predecoded-instruction-cache correctness: the fast-dispatch core must be
// observationally identical to the baseline interpreter even when code
// changes under the cache — self-modifying firmware, host-side pokes,
// snapshot restores, and MPU reconfiguration — and a fleet run must produce
// the exact same digest in either mode (docs/simulator.md, "Predecoded
// instruction cache").
#include <gtest/gtest.h>

#include <string>

#include "src/fleet/fleet.h"
#include "src/mcu/machine.h"
#include "src/mcu/memory_map.h"
#include "tests/sim_test_util.h"

namespace amulet {
namespace {

constexpr char kStop[] = "  mov #4, &0x0710\n";

constexpr char kMpuRegs[] =
    ".equ MPUCTL0, 0x05A0\n"
    ".equ MPUCTL1, 0x05A2\n"
    ".equ MPUSEGB2, 0x05A4\n"
    ".equ MPUSEGB1, 0x05A6\n"
    ".equ MPUSAM, 0x05A8\n";

// Runs `source` on a fast-dispatch machine and a baseline-interpreter
// machine and checks the outcomes and final snapshots are byte-identical.
// Returns the fast machine's outcome for semantic assertions.
struct DualRun {
  Machine fast;
  Machine slow;
  Cpu::RunOutcome outcome;
};

void RunBoth(DualRun* dual, const std::string& source, uint64_t max_cycles = 100000) {
  dual->fast.cpu().set_predecode(true);
  dual->slow.cpu().set_predecode(false);
  AssembleAndLoad(&dual->fast, source);
  AssembleAndLoad(&dual->slow, source);
  dual->outcome = dual->fast.Run(max_cycles);
  const Cpu::RunOutcome slow_outcome = dual->slow.Run(max_cycles);
  EXPECT_EQ(dual->outcome.result, slow_outcome.result);
  EXPECT_EQ(dual->outcome.stop_code, slow_outcome.stop_code);
  EXPECT_EQ(dual->outcome.cycles, slow_outcome.cycles);
  EXPECT_EQ(dual->fast.cpu().instruction_count(), dual->slow.cpu().instruction_count());
  EXPECT_EQ(CaptureSnapshot(dual->fast).bytes, CaptureSnapshot(dual->slow).bytes)
      << "fast-dispatch and interpreter snapshots diverged";
}

// Firmware that writes its own instructions: builds a tiny routine in SRAM
// (`mov #1, r4; ret`), calls it, patches first the immediate ext word and
// then the opcode word through ordinary stores, and calls it again. A stale
// predecode entry would replay the old instruction.
TEST(PredecodeTest, SelfModifyingCodeMatchesInterpreter) {
  DualRun dual;
  RunBoth(&dual,
          "start:\n"
          "  mov #0x2400, sp\n"
          "  mov #0x4034, &0x2000\n"  // mov #imm, r4
          "  mov #1, &0x2002\n"       // imm = 1
          "  mov #0x4130, &0x2004\n"  // ret
          "  call #0x2000\n"
          "  mov r4, r6\n"            // r6 = 1
          "  mov #42, &0x2002\n"      // patch the ext word: imm = 42
          "  call #0x2000\n"
          "  mov r4, r7\n"            // r7 = 42 (stale cache would leave 1)
          "  mov #0x4035, &0x2000\n"  // patch the opcode word: mov #imm, r5
          "  call #0x2000\n"          // r5 = 42
          + std::string(kStop));
  EXPECT_EQ(dual.outcome.result, StepResult::kStopped);
  EXPECT_EQ(dual.fast.cpu().reg(Reg::kR6), 1);
  EXPECT_EQ(dual.fast.cpu().reg(Reg::kR7), 42);
  EXPECT_EQ(dual.fast.cpu().reg(Reg::kR5), 42);
}

// Same pattern, but the routine under modification lives in FRAM: the
// firmware patches one word of its own already-executed code in place,
// addressing it through a register so no hand-counted offsets are needed.
TEST(PredecodeTest, SelfModifyingFramExtWordMatchesInterpreter) {
  DualRun dual;
  RunBoth(&dual,
          "start:\n"
          "  mov #0x2400, sp\n"
          "  call #leaf\n"
          "  mov r4, r6\n"      // r6 = 5
          "  mov #leaf, r10\n"
          "  mov #99, 2(r10)\n" // patch the immediate ext word of `mov #5, r4`
          "  call #leaf\n"
          "  mov r4, r7\n"      // r7 = 99
          "  mov #0x4035, 0(r10)\n"  // patch the opcode word: mov #imm, r5
          "  call #leaf\n"      // r5 = 99
          + std::string(kStop) +
          "leaf:\n"
          "  mov #5, r4\n"
          "  ret\n");
  EXPECT_EQ(dual.outcome.result, StepResult::kStopped);
  EXPECT_EQ(dual.fast.cpu().reg(Reg::kR6), 5);
  EXPECT_EQ(dual.fast.cpu().reg(Reg::kR7), 99);
  EXPECT_EQ(dual.fast.cpu().reg(Reg::kR5), 99);
}

// Host-side PokeWord into already-executed code must invalidate the cached
// entry, exactly like tooling that patches a running machine.
TEST(PredecodeTest, HostPokeInvalidatesCachedCode) {
  for (const bool predecode : {true, false}) {
    Machine m;
    m.cpu().set_predecode(predecode);
    const Image image = AssembleAndLoad(&m,
                                        "start:\n"
                                        "  mov #1, r4\n"
                                        "loop:\n"
                                        "  jmp loop\n");
    // Spin long enough that `loop` is fetched (and cached) many times.
    Cpu::RunOutcome out = m.Run(200);
    ASSERT_EQ(out.result, StepResult::kOk);
    // Overwrite the spin jump with `mov #4, &0x0710` (stop).
    const uint16_t loop_addr = image.SymbolOrZero("loop");
    ASSERT_NE(loop_addr, 0);
    m.bus().PokeWord(loop_addr, 0x40B2);
    m.bus().PokeWord(static_cast<uint16_t>(loop_addr + 2), 4);
    m.bus().PokeWord(static_cast<uint16_t>(loop_addr + 4), 0x0710);
    out = m.Run(1000);
    EXPECT_EQ(out.result, StepResult::kStopped)
        << (predecode ? "predecode" : "interpreter") << " kept running stale code";
    EXPECT_EQ(out.stop_code, 4);
  }
}

// Restoring a snapshot replaces all of memory; cached predecode entries from
// the pre-restore program must not survive into the restored one.
TEST(PredecodeTest, RestoreSnapshotDropsStaleEntries) {
  // Donor machine: program B loaded (never run), captured as a snapshot.
  Machine donor;
  AssembleAndLoad(&donor,
                  "start:\n"
                  "  mov #222, r4\n" +
                      std::string(kStop));
  const MachineSnapshot snapshot = CaptureSnapshot(donor);

  // Victim machine: runs program A to completion (same addresses, different
  // code), then gets the donor snapshot restored over it.
  Machine m;
  m.cpu().set_predecode(true);
  Cpu::RunOutcome out;
  AssembleAndLoad(&m,
                  "start:\n"
                  "  mov #111, r4\n" +
                      std::string(kStop));
  out = m.Run(100000);
  ASSERT_EQ(out.result, StepResult::kStopped);
  ASSERT_EQ(m.cpu().reg(Reg::kR4), 111);

  ASSERT_TRUE(RestoreSnapshot(snapshot, &m).ok());
  out = m.Run(100000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(m.cpu().reg(Reg::kR4), 222) << "stale predecode entries executed after restore";
}

// MPU enabled mid-program, then a fetch from a non-executable segment: the
// fast path must take the same NMI at the same cycle as the interpreter.
// Enabling the MPU after code has been cached also exercises the cached
// fetch-permission revalidation (the MPU config generation check).
TEST(PredecodeTest, MpuFetchViolationMatchesInterpreter) {
  DualRun dual;
  RunBoth(&dual,
          std::string(kMpuRegs) +
              "start:\n"
              "  mov #0x2400, sp\n"
              "  mov #nmi, &0xFFFC\n"
              "  mov #0x0800, &MPUSEGB1\n"
              "  mov #0x0A00, &MPUSEGB2\n"
              "  mov #0x0034, &MPUSAM\n"    // seg1 X, seg2 RW, seg3 none
              "  mov #0xA501, &MPUCTL0\n"   // enable after this code was cached
              "  br #0x9000\n"              // fetch from RW segment -> violation
              "nmi:\n"
              "  mov #1, r10\n"
              "  mov #3, &0x0710\n",
          50000);
  EXPECT_EQ(dual.outcome.result, StepResult::kStopped);
  EXPECT_EQ(dual.outcome.stop_code, 3);
  EXPECT_EQ(dual.fast.cpu().reg(Reg::kR10), 1);
  EXPECT_TRUE(dual.fast.mpu().violation_flags() != 0);
}

// End-to-end: a small fleet simulated with and without predecode produces
// the exact same FleetDigest (the determinism contract the CI gate enforces
// at scale with `amuletc fleet --no-predecode`).
TEST(PredecodeTest, FleetDigestIdenticalAcrossModes) {
  FleetConfig config;
  config.device_count = 4;
  config.apps = {"pedometer", "clock"};
  config.model = MemoryModel::kMpu;
  config.fleet_seed = 20180711;
  config.sim_ms = 200;
  config.jobs = 2;

  config.predecode = true;
  auto fast = RunFleet(config);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();

  config.predecode = false;
  config.jobs = 1;  // digest identity must also hold across thread counts
  auto slow = RunFleet(config);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();

  EXPECT_EQ(FleetDigest(*fast), FleetDigest(*slow));
  EXPECT_GT(fast->aggregate.total_instructions, 0u);
  EXPECT_EQ(fast->aggregate.total_instructions, slow->aggregate.total_instructions);
}

}  // namespace
}  // namespace amulet
