// Coverage of every AmuletOS system service (each ApiId) from app code, plus
// listing-generator tests.
#include <gtest/gtest.h>

#include "src/aft/aft.h"
#include "src/aft/listing.h"
#include "src/os/os.h"

namespace amulet {
namespace {

struct ServiceRig {
  Machine machine;
  std::unique_ptr<AmuletOs> os;
  Image image;

  void Boot(const std::string& source, MemoryModel model = MemoryModel::kMpu) {
    AftOptions options;
    options.model = model;
    auto fw = BuildFirmware({{"svc", source}}, options);
    ASSERT_TRUE(fw.ok()) << fw.status().ToString();
    image = fw->image;
    os = std::make_unique<AmuletOs>(&machine, std::move(*fw), OsOptions{});
    ASSERT_TRUE(os->Boot().ok());
  }
  uint16_t Global(const std::string& name) {
    return machine.bus().PeekWord(image.SymbolOrZero("svc_g_" + name));
  }
};

TEST(OsServicesTest, TimerStopEndsDelivery) {
  ServiceRig rig;
  rig.Boot(R"(
int ticks;
void on_init(void) { amulet_timer_start(3, 1000); }
void on_timer(int timer_id) {
  ticks++;
  if (ticks == 3) {
    amulet_timer_stop(3);
  }
}
)");
  ASSERT_TRUE(rig.os->RunFor(20'000).ok());
  EXPECT_EQ(rig.Global("ticks"), 3u);
}

TEST(OsServicesTest, TwoTimersInterleave) {
  ServiceRig rig;
  rig.Boot(R"(
int fast;
int slow;
void on_init(void) {
  amulet_timer_start(0, 100);
  amulet_timer_start(1, 1000);
}
void on_timer(int timer_id) {
  if (timer_id == 0) { fast++; }
  if (timer_id == 1) { slow++; }
}
)");
  ASSERT_TRUE(rig.os->RunFor(3'000).ok());
  EXPECT_EQ(rig.Global("fast"), 30u);
  EXPECT_EQ(rig.Global("slow"), 3u);
}

TEST(OsServicesTest, AccelUnsubscribeStopsSamples) {
  ServiceRig rig;
  rig.Boot(R"(
int samples;
void on_init(void) { amulet_accel_subscribe(10); }
void on_accel(int x, int y, int z) {
  samples++;
  if (samples == 5) {
    amulet_accel_unsubscribe();
  }
}
)");
  ASSERT_TRUE(rig.os->RunFor(5'000).ok());
  EXPECT_EQ(rig.Global("samples"), 5u);
}

TEST(OsServicesTest, HrUnsubscribeStops) {
  ServiceRig rig;
  rig.Boot(R"(
int beats;
void on_init(void) { amulet_hr_subscribe(); }
void on_heartrate(int bpm) {
  beats++;
  if (beats == 2) { amulet_hr_unsubscribe(); }
}
)");
  ASSERT_TRUE(rig.os->RunFor(10'000).ok());
  EXPECT_EQ(rig.Global("beats"), 2u);
}

TEST(OsServicesTest, DisplayClearEmptiesDisplay) {
  ServiceRig rig;
  rig.Boot(R"(
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) {
  if (id == 0) {
    amulet_display_digits(0, 11);
    amulet_display_digits(1, 22);
  } else {
    amulet_display_clear();
  }
}
)");
  ASSERT_TRUE(rig.os->Deliver(0, EventType::kButton, 0).ok());
  EXPECT_EQ(rig.os->display(0).size(), 2u);
  ASSERT_TRUE(rig.os->Deliver(0, EventType::kButton, 1).ok());
  EXPECT_TRUE(rig.os->display(0).empty());
}

TEST(OsServicesTest, RandReturnsVaryingNonNegative) {
  ServiceRig rig;
  rig.Boot(R"(
int a; int b; int c;
void on_init(void) {
  a = amulet_rand();
  b = amulet_rand();
  c = amulet_rand();
}
)");
  int a = rig.Global("a");
  int b = rig.Global("b");
  int c = rig.Global("c");
  EXPECT_TRUE(a != b || b != c) << "three identical draws is (almost surely) a bug";
  EXPECT_LT(a, 0x8000);
  EXPECT_LT(b, 0x8000);
}

TEST(OsServicesTest, SensorReadsArePlausible) {
  ServiceRig rig;
  rig.Boot(R"(
int temp; int battery; int light;
void on_init(void) {
  temp = amulet_temp_read();
  battery = amulet_battery_read();
  light = amulet_light_read();
}
)");
  EXPECT_GT(rig.Global("temp"), 3000u);
  EXPECT_LT(rig.Global("temp"), 3700u);
  EXPECT_EQ(rig.Global("battery"), 100u) << "fresh battery at t=0";
  EXPECT_LT(rig.Global("light"), 200u) << "midnight";
}

TEST(OsServicesTest, ClockReadsTrackSimTime) {
  ServiceRig rig;
  rig.Boot(R"(
int h; int m; int s;
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) {
  h = amulet_clock_hour();
  m = amulet_clock_minute();
  s = amulet_clock_second();
}
)");
  ASSERT_TRUE(rig.os->RunFor(2ull * 3600 * 1000 + 15 * 60 * 1000 + 42 * 1000).ok());
  ASSERT_TRUE(rig.os->PressButton(0).ok());
  EXPECT_EQ(rig.Global("h"), 2u);
  EXPECT_EQ(rig.Global("m"), 15u);
  EXPECT_EQ(rig.Global("s"), 42u);
}

TEST(OsServicesTest, LogAppendAndValueBothRecorded) {
  ServiceRig rig;
  rig.Boot(R"(
void on_init(void) {
  amulet_log_value(7, -3);
  amulet_log_append(8, 123);
}
)");
  ASSERT_EQ(rig.os->log().size(), 2u);
  EXPECT_EQ(rig.os->log()[0].tag, 7);
  EXPECT_EQ(rig.os->log()[0].value, -3);
  EXPECT_EQ(rig.os->log()[1].tag, 8);
  EXPECT_EQ(rig.os->log()[1].value, 123);
}

TEST(OsServicesTest, NoopReturnsOne) {
  ServiceRig rig;
  rig.Boot("int r; void on_init(void) { r = amulet_noop(); }");
  EXPECT_EQ(rig.Global("r"), 1u);
}

TEST(OsServicesTest, HapticBuzzIsAcceptedSilently) {
  ServiceRig rig;
  rig.Boot("void on_init(void) { amulet_haptic_buzz(300); }");
  EXPECT_TRUE(rig.os->faults().empty());
}

// ---------------------------------------------------------------------------
// Listing generator
// ---------------------------------------------------------------------------

TEST(ListingTest, RegionMapCoversEveryApp) {
  AftOptions options;
  options.model = MemoryModel::kMpu;
  auto fw = BuildFirmware({{"alpha", "void on_init(void) { }"},
                           {"beta", "void on_init(void) { }"}},
                          options);
  ASSERT_TRUE(fw.ok());
  std::string map = RenderRegionMap(*fw);
  EXPECT_NE(map.find("alpha code"), std::string::npos);
  EXPECT_NE(map.find("alpha stack"), std::string::npos);
  EXPECT_NE(map.find("beta globals"), std::string::npos);
  EXPECT_NE(map.find("OS text"), std::string::npos);
}

TEST(ListingTest, DisassemblyAnnotatesSymbolsAndDecodes) {
  AftOptions options;
  options.model = MemoryModel::kMpu;
  auto fw = BuildFirmware(
      {{"app", "int x; void on_init(void) { x = 42; }"}}, options);
  ASSERT_TRUE(fw.ok());
  std::string text = DisassembleRange(*fw, fw->apps[0].code_lo, fw->apps[0].code_hi);
  EXPECT_NE(text.find("app_f_on_init:"), std::string::npos);
  EXPECT_NE(text.find("mov"), std::string::npos);
  EXPECT_NE(text.find("#42"), std::string::npos);
}

TEST(ListingTest, FullListingIncludesSymbolTable) {
  AftOptions options;
  options.model = MemoryModel::kSoftwareOnly;
  auto fw = BuildFirmware({{"app", "void on_init(void) { }"}}, options);
  ASSERT_TRUE(fw.ok());
  std::string listing = RenderListing(*fw);
  EXPECT_NE(listing.find("Symbols:"), std::string::npos);
  EXPECT_NE(listing.find("__dispatch_app"), std::string::npos);
  EXPECT_NE(listing.find("__bnd_app_data_lo"), std::string::npos);
  EXPECT_NE(listing.find("SoftwareOnly"), std::string::npos);
}

TEST(FaultRecordTest, CrashDumpContainsRecentInstructions) {
  ServiceRig rig;
  rig.Boot(R"(
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) {
  int* p = (int*)0x1C00;
  *p = 1;
}
)",
           MemoryModel::kSoftwareOnly);
  ASSERT_TRUE(rig.os->Deliver(0, EventType::kButton, 0).ok());
  ASSERT_EQ(rig.os->faults().size(), 1u);
  const FaultRecord& fault = rig.os->faults()[0];
  EXPECT_FALSE(fault.recent_pcs.empty());
  EXPECT_EQ(fault.kind, FaultKind::kCheckMemory);
  const std::string dump = RenderFaultForensics(fault, rig.machine.bus());
  EXPECT_NE(dump.find("cmp"), std::string::npos)
      << "the failed check's compare should be in the crash dump:\n"
      << dump;
  EXPECT_NE(dump.find("kind check-memory"), std::string::npos) << dump;
}

}  // namespace
}  // namespace amulet
