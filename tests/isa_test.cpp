#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/isa/cycles.h"
#include "src/isa/disassembler.h"
#include "src/isa/encoding.h"
#include "src/isa/instruction.h"

namespace amulet {
namespace {

// ---------------------------------------------------------------------------
// Encoding round-trips
// ---------------------------------------------------------------------------

Instruction RoundTrip(const Instruction& insn) {
  auto words = Encode(insn);
  EXPECT_TRUE(words.ok()) << words.status().ToString();
  auto decoded = Decode(*words);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return *decoded;
}

// Every Format-I opcode with a representative operand pair.
class FormatOneRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(FormatOneRoundTrip, RegisterToRegister) {
  Instruction insn;
  insn.op = GetParam();
  insn.src = RegOp(Reg::kR5);
  insn.dst = RegOp(Reg::kR10);
  EXPECT_EQ(RoundTrip(insn), insn);
}

TEST_P(FormatOneRoundTrip, ByteForm) {
  Instruction insn;
  insn.op = GetParam();
  insn.byte = true;
  insn.src = RegOp(Reg::kR4);
  insn.dst = IndexedOp(Reg::kR6, 0x0010);
  EXPECT_EQ(RoundTrip(insn), insn);
}

INSTANTIATE_TEST_SUITE_P(AllFormatOne, FormatOneRoundTrip,
                         ::testing::Values(Opcode::kMov, Opcode::kAdd, Opcode::kAddc,
                                           Opcode::kSubc, Opcode::kSub, Opcode::kCmp,
                                           Opcode::kDadd, Opcode::kBit, Opcode::kBic,
                                           Opcode::kBis, Opcode::kXor, Opcode::kAnd));

// Every source addressing mode round-trips.
class SrcModeRoundTrip : public ::testing::TestWithParam<Operand> {};

TEST_P(SrcModeRoundTrip, MovToRegister) {
  Instruction insn;
  insn.op = Opcode::kMov;
  insn.src = GetParam();
  insn.dst = RegOp(Reg::kR15);
  EXPECT_EQ(RoundTrip(insn), insn);
}

INSTANTIATE_TEST_SUITE_P(
    AllSrcModes, SrcModeRoundTrip,
    ::testing::Values(RegOp(Reg::kR9), IndexedOp(Reg::kR4, 0x1234), SymbolicOp(0x0040),
                      AbsoluteOp(0x0700), IndirectOp(Reg::kR8), IndirectAutoIncOp(Reg::kR7),
                      RawImmediateOp(0x1234)));

// All six constant-generator values encode without an extension word.
class ConstGenTest : public ::testing::TestWithParam<uint16_t> {};

TEST_P(ConstGenTest, NoExtWord) {
  Instruction insn;
  insn.op = Opcode::kMov;
  insn.src = ImmediateOp(GetParam());
  insn.dst = RegOp(Reg::kR12);
  auto words = Encode(insn);
  ASSERT_TRUE(words.ok());
  EXPECT_EQ(words->size(), 1u) << "constant " << GetParam() << " should use the CG";
  auto decoded = Decode(*words);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->src.mode, AddrMode::kConst);
  EXPECT_EQ(decoded->src.ext, GetParam());
}

INSTANTIATE_TEST_SUITE_P(CgValues, ConstGenTest,
                         ::testing::Values(0, 1, 2, 4, 8, 0xFFFF));

TEST(EncodingTest, NonCgImmediateTakesExtWord) {
  Instruction insn;
  insn.op = Opcode::kMov;
  insn.src = ImmediateOp(1234);
  insn.dst = RegOp(Reg::kR12);
  auto words = Encode(insn);
  ASSERT_TRUE(words.ok());
  ASSERT_EQ(words->size(), 2u);
  EXPECT_EQ((*words)[1], 1234);
}

TEST(EncodingTest, FormatTwoRoundTrips) {
  for (Opcode op : {Opcode::kRrc, Opcode::kSwpb, Opcode::kRra, Opcode::kSxt, Opcode::kPush,
                    Opcode::kCall}) {
    Instruction insn;
    insn.op = op;
    insn.dst = RegOp(Reg::kR11);
    EXPECT_EQ(RoundTrip(insn), insn) << OpcodeName(op);
  }
}

TEST(EncodingTest, RetiRoundTrips) {
  Instruction insn;
  insn.op = Opcode::kReti;
  auto words = Encode(insn);
  ASSERT_TRUE(words.ok());
  EXPECT_EQ((*words)[0], 0x1300);
  EXPECT_EQ(RoundTrip(insn).op, Opcode::kReti);
}

TEST(EncodingTest, JumpOffsetsRoundTrip) {
  for (int16_t offset : {-512, -1, 0, 1, 255, 511}) {
    Instruction insn;
    insn.op = Opcode::kJnz;
    insn.jump_offset_words = offset;
    Instruction back = RoundTrip(insn);
    EXPECT_EQ(back.jump_offset_words, offset);
  }
}

TEST(EncodingTest, JumpOffsetOutOfRangeRejected) {
  Instruction insn;
  insn.op = Opcode::kJmp;
  insn.jump_offset_words = 512;
  EXPECT_FALSE(Encode(insn).ok());
  insn.jump_offset_words = -513;
  EXPECT_FALSE(Encode(insn).ok());
}

TEST(EncodingTest, AllJumpConditionsRoundTrip) {
  for (Opcode op : {Opcode::kJnz, Opcode::kJz, Opcode::kJnc, Opcode::kJc, Opcode::kJn,
                    Opcode::kJge, Opcode::kJl, Opcode::kJmp}) {
    Instruction insn;
    insn.op = op;
    insn.jump_offset_words = 5;
    EXPECT_EQ(RoundTrip(insn).op, op);
  }
}

TEST(EncodingTest, ImmediateDestinationRejected) {
  Instruction insn;
  insn.op = Opcode::kMov;
  insn.src = RegOp(Reg::kR4);
  insn.dst = RawImmediateOp(5);
  EXPECT_FALSE(Encode(insn).ok());
}

TEST(EncodingTest, IndexedOnConstantGeneratorRejected) {
  Instruction insn;
  insn.op = Opcode::kMov;
  insn.src = IndexedOp(Reg::kCg, 4);
  insn.dst = RegOp(Reg::kR4);
  EXPECT_FALSE(Encode(insn).ok());
}

TEST(DecodingTest, EmptyStreamRejected) {
  EXPECT_FALSE(Decode({}).ok());
}

TEST(DecodingTest, MissingExtWordRejected) {
  // MOV #imm, Rn needs an extension word.
  Instruction insn;
  insn.op = Opcode::kMov;
  insn.src = RawImmediateOp(1234);
  insn.dst = RegOp(Reg::kR4);
  auto words = Encode(insn);
  ASSERT_TRUE(words.ok());
  std::vector<uint16_t> truncated = {(*words)[0]};
  EXPECT_FALSE(Decode(truncated).ok());
}

TEST(DecodingTest, UndefinedTopNibbleRejected) {
  std::vector<uint16_t> words = {0x0000};
  EXPECT_FALSE(Decode(words).ok());
}

// ---------------------------------------------------------------------------
// Cycle model (spot-checked against the TI family guide tables)
// ---------------------------------------------------------------------------

struct CycleCase {
  Instruction insn;
  int expected;
  const char* what;
};

Instruction MakeMov(Operand src, Operand dst) {
  Instruction insn;
  insn.op = Opcode::kMov;
  insn.src = src;
  insn.dst = dst;
  return insn;
}

TEST(CycleTest, FormatOneTable) {
  const CycleCase cases[] = {
      {MakeMov(RegOp(Reg::kR5), RegOp(Reg::kR6)), 1, "Rn->Rm"},
      {MakeMov(RegOp(Reg::kR5), RegOp(Reg::kPc)), 2, "Rn->PC"},
      {MakeMov(RegOp(Reg::kR5), IndexedOp(Reg::kR6, 2)), 4, "Rn->x(Rm)"},
      {MakeMov(RegOp(Reg::kR5), AbsoluteOp(0x200)), 4, "Rn->&EDE"},
      {MakeMov(IndirectOp(Reg::kR5), RegOp(Reg::kR6)), 2, "@Rn->Rm"},
      {MakeMov(IndirectOp(Reg::kR5), IndexedOp(Reg::kR6, 2)), 5, "@Rn->x(Rm)"},
      {MakeMov(IndirectAutoIncOp(Reg::kR5), RegOp(Reg::kR6)), 2, "@Rn+->Rm"},
      {MakeMov(IndirectAutoIncOp(Reg::kR5), RegOp(Reg::kPc)), 3, "@Rn+->PC"},
      {MakeMov(RawImmediateOp(100), RegOp(Reg::kR6)), 2, "#N->Rm"},
      {MakeMov(RawImmediateOp(100), RegOp(Reg::kPc)), 3, "BR #N"},
      {MakeMov(RawImmediateOp(100), AbsoluteOp(0x200)), 5, "#N->&EDE"},
      {MakeMov(IndexedOp(Reg::kR5, 2), RegOp(Reg::kR6)), 3, "x(Rn)->Rm"},
      {MakeMov(IndexedOp(Reg::kR5, 2), IndexedOp(Reg::kR6, 4)), 6, "x(Rn)->x(Rm)"},
      {MakeMov(AbsoluteOp(0x200), AbsoluteOp(0x202)), 6, "&EDE->&TONI"},
      {MakeMov(ImmediateOp(1), RegOp(Reg::kR6)), 1, "CG #1->Rm"},
  };
  for (const CycleCase& c : cases) {
    EXPECT_EQ(InstructionCycles(c.insn), c.expected) << c.what;
  }
}

TEST(CycleTest, FormatTwoTable) {
  Instruction push;
  push.op = Opcode::kPush;
  push.dst = RegOp(Reg::kR5);
  EXPECT_EQ(InstructionCycles(push), 3);
  push.dst = RawImmediateOp(10);
  EXPECT_EQ(InstructionCycles(push), 4);

  Instruction call;
  call.op = Opcode::kCall;
  call.dst = RawImmediateOp(0x4400);
  EXPECT_EQ(InstructionCycles(call), 5);
  call.dst = RegOp(Reg::kR5);
  EXPECT_EQ(InstructionCycles(call), 4);

  Instruction rra;
  rra.op = Opcode::kRra;
  rra.dst = RegOp(Reg::kR5);
  EXPECT_EQ(InstructionCycles(rra), 1);
  rra.dst = AbsoluteOp(0x200);
  EXPECT_EQ(InstructionCycles(rra), 4);

  Instruction reti;
  reti.op = Opcode::kReti;
  EXPECT_EQ(InstructionCycles(reti), 5);
}

TEST(CycleTest, JumpsAreTwoCycles) {
  Instruction j;
  j.op = Opcode::kJmp;
  j.jump_offset_words = -3;
  EXPECT_EQ(InstructionCycles(j), 2);
  j.op = Opcode::kJl;
  EXPECT_EQ(InstructionCycles(j), 2);
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

TEST(DisassemblerTest, BasicForms) {
  EXPECT_EQ(Disassemble(MakeMov(RegOp(Reg::kR5), RegOp(Reg::kR6)), 0x4400),
            "mov      r5, r6");
  Instruction byte_insn = MakeMov(IndirectAutoIncOp(Reg::kR9), AbsoluteOp(0x070E));
  byte_insn.byte = true;
  EXPECT_EQ(Disassemble(byte_insn, 0x4400), "mov.b    @r9+, &0x070e");
  Instruction jump;
  jump.op = Opcode::kJnz;
  jump.jump_offset_words = -2;
  EXPECT_EQ(Disassemble(jump, 0x4400), "jnz      0x43fe");
}

TEST(DisassemblerTest, SymbolicResolvesAgainstPc) {
  Instruction insn = MakeMov(SymbolicOp(0x0010), RegOp(Reg::kR4));
  // ext word at 0x4402; target = 0x4402 + 0x10 = 0x4412
  EXPECT_EQ(Disassemble(insn, 0x4400), "mov      0x4412, r4");
}

TEST(InstructionTest, WordCounts) {
  EXPECT_EQ(MakeMov(RegOp(Reg::kR4), RegOp(Reg::kR5)).WordCount(), 1);
  EXPECT_EQ(MakeMov(RawImmediateOp(99), RegOp(Reg::kR5)).WordCount(), 2);
  EXPECT_EQ(MakeMov(RawImmediateOp(99), AbsoluteOp(0x200)).WordCount(), 3);
  Instruction j;
  j.op = Opcode::kJmp;
  EXPECT_EQ(j.WordCount(), 1);
}

}  // namespace
}  // namespace amulet
