// Cross-host sharding and heterogeneous-population tests: the splitmix64
// per-device seed mixer, shard-slice partitioning, shard checkpoint merge
// (merged digest byte-identical to a single-host run, including after a
// mid-run kill+resume of one shard), population-profile parsing, and
// heterogeneous-fleet determinism across re-runs and re-partitionings.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/fleet/checkpoint.h"
#include "src/fleet/device.h"
#include "src/fleet/fleet.h"
#include "src/fleet/merge.h"
#include "src/fleet/profile.h"

namespace amulet {
namespace {

// Mirrors fleet_test's SmallFleet, but as the GLOBAL config of a shardable
// fleet: two light apps, short sim, deterministic seed.
FleetConfig ShardableFleet(int devices, int jobs) {
  FleetConfig config;
  config.device_count = devices;
  config.apps = {"pedometer", "clock"};
  config.model = MemoryModel::kMpu;
  config.fleet_seed = 0xF1EE7;
  config.sim_ms = 500;
  config.jobs = jobs;
  return config;
}

// Runs every shard of `base` (with per-shard jobs from `shard_jobs`, cycled),
// checkpointing each, then merges the shard checkpoints and returns the
// reconstructed whole-fleet report.
Result<FleetReport> RunShardedAndMerge(const FleetConfig& base, int shard_count,
                                       const std::vector<int>& shard_jobs,
                                       const char* path_prefix) {
  std::vector<FleetCheckpoint> shards;
  for (int s = 0; s < shard_count; ++s) {
    FleetConfig shard = base;
    shard.shard_index = s;
    shard.shard_count = shard_count;
    shard.jobs = shard_jobs[static_cast<size_t>(s) % shard_jobs.size()];
    shard.checkpoint_path = std::string(path_prefix) + std::to_string(s) + ".bin";
    shard.checkpoint_every_devices = 1 << 20;  // final checkpoint only
    std::remove(shard.checkpoint_path.c_str());
    Result<FleetReport> report = RunFleet(shard);
    if (!report.ok()) {
      return report.status();
    }
    Result<FleetCheckpoint> checkpoint = ReadFleetCheckpoint(shard.checkpoint_path);
    if (!checkpoint.ok()) {
      return checkpoint.status();
    }
    std::remove(shard.checkpoint_path.c_str());
    shards.push_back(std::move(*checkpoint));
  }
  ASSIGN_OR_RETURN(FleetCheckpoint merged, MergeFleetCheckpoints(shards));
  return ReportFromCheckpoint(merged);
}

// ---------------------------------------------------------------------------
// The seed mixer (the bugfix the sharding work depends on)

TEST(DeviceSeedTest, AdjacentIdsAreDecorrelated) {
  // The old `fleet_seed ^ id` derivation gave adjacent ids seeds differing in
  // exactly one bit. The splitmix64 mixer must avalanche: neighboring ids'
  // seeds should differ in many bits.
  const uint32_t fleet_seed = 20180711;
  for (int id = 0; id < 256; ++id) {
    const uint32_t a = fleet_internal::DeviceSeed(fleet_seed, id);
    const uint32_t b = fleet_internal::DeviceSeed(fleet_seed, id + 1);
    EXPECT_GE(__builtin_popcount(a ^ b), 6) << "id " << id;
  }
}

TEST(DeviceSeedTest, NoXorStyleCollisions) {
  // With xor, (seed, i) and (seed^1, i^1) collided on the same stream. The
  // mixer keys on the full 64-bit (seed, id) pair, so these must all differ.
  const uint32_t seed = 0xF1EE7;
  for (int id = 0; id < 64; ++id) {
    EXPECT_NE(fleet_internal::DeviceSeed(seed, id),
              fleet_internal::DeviceSeed(seed ^ 1u, id ^ 1))
        << "id " << id;
  }
}

TEST(DeviceSeedTest, PureFunctionOfGlobalId) {
  // Identical (seed, id) inputs always map to the same seed — the property
  // that lets any shard simulate any device.
  EXPECT_EQ(fleet_internal::DeviceSeed(7, 42), fleet_internal::DeviceSeed(7, 42));
  EXPECT_NE(fleet_internal::DeviceSeed(7, 42), fleet_internal::DeviceSeed(8, 42));
  EXPECT_NE(fleet_internal::DeviceSeed(7, 42), fleet_internal::DeviceSeed(7, 43));
}

// ---------------------------------------------------------------------------
// Shard ranges

TEST(ShardRangeTest, SlicesAreDisjointCoveringAndBalanced) {
  for (int devices : {1, 7, 10, 100, 10'000}) {
    for (int shard_count : {1, 2, 3, 4, 7}) {
      if (shard_count > devices) {
        continue;
      }
      int covered = 0;
      int prev_hi = 0;
      for (int s = 0; s < shard_count; ++s) {
        const ShardRange range = ShardRangeFor(devices, s, shard_count);
        EXPECT_EQ(range.lo, prev_hi);  // contiguous and disjoint
        EXPECT_GE(range.size(), devices / shard_count);
        EXPECT_LE(range.size(), devices / shard_count + 1);
        covered += range.size();
        prev_hi = range.hi;
      }
      EXPECT_EQ(covered, devices);
      EXPECT_EQ(prev_hi, devices);
    }
  }
}

TEST(ShardRangeTest, InvalidInputsYieldEmptyRange) {
  EXPECT_EQ(ShardRangeFor(10, -1, 4).size(), 0);
  EXPECT_EQ(ShardRangeFor(10, 4, 4).size(), 0);
  EXPECT_EQ(ShardRangeFor(10, 0, 0).size(), 0);
  EXPECT_EQ(ShardRangeFor(0, 0, 1).size(), 0);
}

TEST(FleetTest, RejectsInvalidShardConfigs) {
  FleetConfig config = ShardableFleet(4, 1);
  config.shard_index = 2;
  config.shard_count = 2;
  EXPECT_EQ(RunFleet(config).status().code(), StatusCode::kInvalidArgument);
  config.shard_index = 0;
  config.shard_count = 8;  // more shards than devices
  EXPECT_EQ(RunFleet(config).status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Sharded vs single-host digest equality

TEST(ShardMergeTest, MergedDigestMatchesSingleHostRetained) {
  Result<FleetReport> single = RunFleet(ShardableFleet(8, 1));
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  // 4 shards at varying thread counts: the merged digest must not depend on
  // partitioning or per-shard scheduling.
  Result<FleetReport> merged =
      RunShardedAndMerge(ShardableFleet(8, 1), 4, {2, 1, 3, 2}, "shard_ckpt_ret_");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(FleetDigest(*merged), FleetDigest(*single));
}

TEST(ShardMergeTest, MergedDigestMatchesSingleHostStreaming) {
  FleetConfig base = ShardableFleet(8, 2);
  base.retain_device_stats = false;
  Result<FleetReport> single = RunFleet(base);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  Result<FleetReport> merged =
      RunShardedAndMerge(base, 2, {1, 2}, "shard_ckpt_stream_");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->devices.empty());
  EXPECT_EQ(FleetDigest(*merged), FleetDigest(*single));
}

// The ISSUE's >=10^4-device acceptance gate: 4 shards x 2,500 devices merged
// vs one 10,000-device run, byte-identical. Streaming mode and a short
// simulated span keep this inside normal ctest time.
TEST(ShardMergeTest, TenThousandDeviceMergedDigestMatchesSingleHost) {
  FleetConfig base;
  base.device_count = 10'000;
  base.apps = {"pedometer"};
  base.fleet_seed = 0xD15C0;
  base.sim_ms = 40;
  base.jobs = 0;  // hardware concurrency
  base.retain_device_stats = false;
  Result<FleetReport> single = RunFleet(base);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  Result<FleetReport> merged =
      RunShardedAndMerge(base, 4, {0}, "shard_ckpt_10k_");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(FleetDigest(*merged), FleetDigest(*single));
  EXPECT_EQ(merged->metrics.counter("fleet.devices"), 10'000u);
}

// Kill one shard mid-run, resume it, then merge: the merged digest must be
// byte-identical to an uninterrupted single-host run.
TEST(ShardMergeTest, KilledAndResumedShardMergesIdentically) {
  Result<FleetReport> single = RunFleet(ShardableFleet(8, 1));
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  std::vector<FleetCheckpoint> shards;
  for (int s = 0; s < 2; ++s) {
    FleetConfig shard = ShardableFleet(8, 1);
    shard.shard_index = s;
    shard.shard_count = 2;
    shard.checkpoint_path = "shard_ckpt_kill_" + std::to_string(s) + ".bin";
    shard.checkpoint_every_devices = 1;
    std::remove(shard.checkpoint_path.c_str());
    if (s == 1) {
      // Simulated kill: two of this shard's four devices complete, then the
      // run aborts; the resume finishes the rest from the checkpoint.
      FleetConfig killed = shard;
      killed.abort_after_devices = 2;
      EXPECT_EQ(RunFleet(killed).status().code(), StatusCode::kCancelled);
      Result<FleetReport> resumed = ResumeFleet(shard);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      EXPECT_EQ(resumed->resumed_devices, 2);
    } else {
      ASSERT_TRUE(RunFleet(shard).ok());
    }
    Result<FleetCheckpoint> checkpoint = ReadFleetCheckpoint(shard.checkpoint_path);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
    std::remove(shard.checkpoint_path.c_str());
    shards.push_back(std::move(*checkpoint));
  }
  Result<FleetCheckpoint> merged = MergeFleetCheckpoints(shards);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  Result<FleetReport> report = ReportFromCheckpoint(*merged);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(FleetDigest(*report), FleetDigest(*single));
}

// ---------------------------------------------------------------------------
// Resume validation (satellite: specific shard/profile mismatch errors)

TEST(ShardResumeTest, ResumeRejectsMismatchedShardSliceNamingBothValues) {
  FleetConfig config = ShardableFleet(8, 1);
  config.shard_index = 0;
  config.shard_count = 2;
  config.checkpoint_path = "shard_ckpt_mismatch.bin";
  std::remove(config.checkpoint_path.c_str());
  ASSERT_TRUE(RunFleet(config).ok());

  FleetConfig other = config;
  other.shard_index = 1;
  const Status status = ResumeFleet(other).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("shard mismatch"), std::string::npos) << status.ToString();
  EXPECT_NE(status.message().find("0/2"), std::string::npos) << status.ToString();
  EXPECT_NE(status.message().find("1/2"), std::string::npos) << status.ToString();
  std::remove(config.checkpoint_path.c_str());
}

TEST(ShardResumeTest, ResumeRejectsMismatchedProfileNamingBothValues) {
  FleetConfig config = ShardableFleet(4, 1);
  config.checkpoint_path = "profile_ckpt_mismatch.bin";
  std::remove(config.checkpoint_path.c_str());
  ASSERT_TRUE(RunFleet(config).ok());

  // Same apps/model, but now drawn through an explicit cohort: the profile
  // hash differs even though the device behavior would not.
  FleetConfig with_profile = config;
  Cohort cohort;
  cohort.name = "wear";
  cohort.apps = config.apps;
  cohort.model = config.model;
  with_profile.profile.cohorts = {cohort};
  const Status status = ResumeFleet(with_profile).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("profile mismatch"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("homogeneous"), std::string::npos) << status.ToString();
  EXPECT_NE(status.message().find("wear"), std::string::npos) << status.ToString();
  std::remove(config.checkpoint_path.c_str());
}

// ---------------------------------------------------------------------------
// Merge validation

TEST(ShardMergeTest, MergeRejectsIncoherentShardSets) {
  FleetConfig base = ShardableFleet(8, 1);
  std::vector<FleetCheckpoint> shards;
  for (int s = 0; s < 2; ++s) {
    FleetConfig shard = base;
    shard.shard_index = s;
    shard.shard_count = 2;
    shard.checkpoint_path = "shard_ckpt_val_" + std::to_string(s) + ".bin";
    shard.checkpoint_every_devices = 1 << 20;
    std::remove(shard.checkpoint_path.c_str());
    ASSERT_TRUE(RunFleet(shard).ok());
    Result<FleetCheckpoint> checkpoint = ReadFleetCheckpoint(shard.checkpoint_path);
    ASSERT_TRUE(checkpoint.ok());
    std::remove(shard.checkpoint_path.c_str());
    shards.push_back(std::move(*checkpoint));
  }

  EXPECT_EQ(MergeFleetCheckpoints({}).status().code(), StatusCode::kInvalidArgument);

  // Missing shard 1.
  {
    const Status status = MergeFleetCheckpoints({shards[0]}).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("2 shard(s)"), std::string::npos) << status.ToString();
  }
  // Shard 0 twice.
  {
    const Status status = MergeFleetCheckpoints({shards[0], shards[0]}).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("appears twice"), std::string::npos)
        << status.ToString();
  }
  // A shard from a different config.
  {
    FleetCheckpoint alien = shards[1];
    alien.config_hash ^= 1;
    const Status status = MergeFleetCheckpoints({shards[0], alien}).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("different fleet config"), std::string::npos)
        << status.ToString();
  }
  // A campaign checkpoint in the pile.
  {
    FleetCheckpoint campaign = shards[1];
    campaign.kind = FleetCheckpointKind::kCampaign;
    const Status status = MergeFleetCheckpoints({shards[0], campaign}).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("campaign"), std::string::npos) << status.ToString();
  }
  // Order-independence: [1, 0] merges the same as [0, 1].
  {
    Result<FleetCheckpoint> forward = MergeFleetCheckpoints({shards[0], shards[1]});
    Result<FleetCheckpoint> reversed = MergeFleetCheckpoints({shards[1], shards[0]});
    ASSERT_TRUE(forward.ok());
    ASSERT_TRUE(reversed.ok());
    EXPECT_EQ(EncodeFleetCheckpoint(*forward), EncodeFleetCheckpoint(*reversed));
  }
}

// A shard checkpoint claiming a device outside its slice is rejected at
// decode time, before any merge can consume it.
TEST(ShardMergeTest, DecodeRejectsCompletedBitOutsideShardSlice) {
  FleetConfig shard = ShardableFleet(8, 1);
  shard.shard_index = 0;
  shard.shard_count = 2;
  shard.checkpoint_path = "shard_ckpt_slice.bin";
  shard.checkpoint_every_devices = 1 << 20;
  std::remove(shard.checkpoint_path.c_str());
  ASSERT_TRUE(RunFleet(shard).ok());
  Result<FleetCheckpoint> checkpoint = ReadFleetCheckpoint(shard.checkpoint_path);
  ASSERT_TRUE(checkpoint.ok());
  std::remove(shard.checkpoint_path.c_str());

  FleetCheckpoint tampered = *checkpoint;
  tampered.completed[7] = true;  // device 7 belongs to shard 1/2
  tampered.devices.push_back(tampered.devices[0]);
  tampered.devices.back().device_id = 7;
  const Status status = DecodeFleetCheckpoint(EncodeFleetCheckpoint(tampered)).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("outside its slice"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// v5 container round trip and v4 migration

TEST(ShardCheckpointTest, ShardAndProfileFieldsRoundTrip) {
  FleetCheckpoint cp;
  cp.config_hash = 0x1234;
  cp.config_text = "devices=8;...";
  Machine machine;
  cp.template_snapshot = CaptureSnapshot(machine);
  cp.device_count = 8;
  cp.completed.assign(8, false);
  cp.completed[4] = true;
  cp.shard_index = 1;
  cp.shard_count = 2;
  cp.profile_hash = 0xABCDEF;
  cp.profile_text = "wear:w=90:model=3:apps=pedometer:act=1/2/1";
  DeviceStats d;
  d.device_id = 4;
  d.cycles = 99;
  cp.devices = {d};

  Result<FleetCheckpoint> decoded = DecodeFleetCheckpoint(EncodeFleetCheckpoint(cp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shard_index, 1);
  EXPECT_EQ(decoded->shard_count, 2);
  EXPECT_EQ(decoded->profile_hash, 0xABCDEFu);
  EXPECT_EQ(decoded->profile_text, cp.profile_text);
}

TEST(ShardCheckpointTest, Version4MigrationError) {
  FleetCheckpoint cp;
  cp.device_count = 1;
  cp.completed = {false};
  std::vector<uint8_t> bytes = EncodeFleetCheckpoint(cp);
  // Rewrite the version word to 4; the version gate fires before the
  // checksum check, so no re-summing is needed.
  const uint32_t v4 = 4;
  std::memcpy(bytes.data() + 4, &v4, 4);
  const Status status = DecodeFleetCheckpoint(bytes).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version 4"), std::string::npos) << status.ToString();
  EXPECT_NE(status.message().find("seed mixer"), std::string::npos) << status.ToString();
}

// ---------------------------------------------------------------------------
// Population profiles

TEST(ProfileTest, ParsesCohortSpecs) {
  Result<Cohort> full = ParseCohortSpec("wear:90:mpu:pedometer+clock:1/2/1");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->name, "wear");
  EXPECT_EQ(full->weight, 90u);
  EXPECT_EQ(full->model, MemoryModel::kMpu);
  EXPECT_EQ(full->apps, (std::vector<std::string>{"pedometer", "clock"}));
  EXPECT_EQ(full->rest_weight, 1u);
  EXPECT_EQ(full->walk_weight, 2u);
  EXPECT_EQ(full->run_weight, 1u);

  Result<Cohort> minimal = ParseCohortSpec("legacy:10:sw");
  ASSERT_TRUE(minimal.ok());
  EXPECT_TRUE(minimal->apps.empty());  // full suite
  EXPECT_EQ(minimal->model, MemoryModel::kSoftwareOnly);

  for (const char* bad :
       {"", "noweight", "a:b:mpu", "a:0:mpu", "a:1:vax", "a:1:mpu:x+:1/1/1",
        "a:1:mpu:clock:1/1", "a:1:mpu:clock:0/0/0", ":5:mpu"}) {
    EXPECT_EQ(ParseCohortSpec(bad).status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(ProfileTest, ParsesProfileFilesWithCommentsAndValidates) {
  Result<PopulationProfile> profile = ParsePopulationProfile(
      "# fleet mix\n"
      "wear:90:mpu:pedometer+clock:1/2/1\n"
      "\n"
      "legacy:10:sw:clock   # trailing comment\n");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_EQ(profile->cohorts.size(), 2u);
  EXPECT_EQ(profile->total_weight(), 100u);

  const Status duplicate =
      ParsePopulationProfile("a:1:mpu\na:2:sw\n").status();
  EXPECT_EQ(duplicate.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(duplicate.message().find("twice"), std::string::npos);

  EXPECT_EQ(ParsePopulationProfile("# only comments\n").status().code(),
            StatusCode::kInvalidArgument);
  // Parse errors carry the line number.
  const Status bad_line = ParsePopulationProfile("a:1:mpu\nb:0:mpu\n").status();
  EXPECT_NE(bad_line.message().find("line 2"), std::string::npos) << bad_line.ToString();
}

TEST(ProfileTest, CohortDrawIsPureAndCoversAllCohorts) {
  PopulationProfile profile;
  for (const char* spec : {"a:1:mpu", "b:1:sw", "c:2:none"}) {
    Result<Cohort> cohort = ParseCohortSpec(spec);
    ASSERT_TRUE(cohort.ok());
    profile.cohorts.push_back(*cohort);
  }
  std::vector<int> counts(3, 0);
  for (int id = 0; id < 1000; ++id) {
    const int first = CohortForDevice(profile, 0xF1EE7, id);
    EXPECT_EQ(first, CohortForDevice(profile, 0xF1EE7, id));  // pure
    ASSERT_GE(first, 0);
    ASSERT_LT(first, 3);
    ++counts[static_cast<size_t>(first)];
  }
  // Every cohort must be populated, and the weight-2 cohort should dominate.
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_GT(counts[2], counts[1]);
}

TEST(ProfileTest, DefaultActivityWeightsMatchHomogeneousModeFor) {
  Cohort cohort;  // 1/1/1 defaults
  for (uint32_t seed : {0u, 1u, 0xF1EE7u, 0xDEADBEEFu}) {
    EXPECT_EQ(ActivityForDevice(cohort, seed), fleet_internal::ModeFor(seed)) << seed;
  }
}

TEST(ProfileTest, CanonicalAndHashCoverEveryField) {
  Result<PopulationProfile> profile =
      ParsePopulationProfile("wear:90:mpu:pedometer:1/2/1\nlegacy:10:sw\n");
  ASSERT_TRUE(profile.ok());
  const std::string canonical = ProfileCanonical(*profile, {0x11, 0x22});
  EXPECT_NE(canonical.find("wear:w=90"), std::string::npos) << canonical;
  EXPECT_NE(canonical.find("act=1/2/1"), std::string::npos) << canonical;
  EXPECT_NE(canonical.find("fw=0000000000000011"), std::string::npos) << canonical;

  const uint64_t hash = ProfileHash(*profile, {0x11, 0x22});
  EXPECT_NE(hash, 0u);
  EXPECT_NE(hash, ProfileHash(*profile, {0x11, 0x33}));  // firmware pins
  PopulationProfile reweighted = *profile;
  reweighted.cohorts[0].weight = 91;
  EXPECT_NE(hash, ProfileHash(reweighted, {0x11, 0x22}));
  EXPECT_EQ(ProfileHash(PopulationProfile{}), 0u);  // homogeneous marker
}

// ---------------------------------------------------------------------------
// Heterogeneous fleet runs

TEST(HeterogeneousFleetTest, DeterministicAcrossJobsAndRepartitioning) {
  FleetConfig base = ShardableFleet(8, 1);
  Result<PopulationProfile> profile = ParsePopulationProfile(
      "wear:60:mpu:pedometer+clock:1/2/1\n"
      "legacy:40:sw:clock:2/1/1\n");
  ASSERT_TRUE(profile.ok());
  base.profile = *profile;

  Result<FleetReport> serial = RunFleet(base);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  FleetConfig parallel = base;
  parallel.jobs = 4;
  Result<FleetReport> threaded = RunFleet(parallel);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_EQ(FleetDigest(*serial), FleetDigest(*threaded));

  // Cohort membership keys on the global id, so re-partitioning the same
  // heterogeneous fleet across 2 or 4 shards merges to the same bytes.
  Result<FleetReport> two =
      RunShardedAndMerge(base, 2, {2, 1}, "het_ckpt_2_");
  ASSERT_TRUE(two.ok()) << two.status().ToString();
  Result<FleetReport> four =
      RunShardedAndMerge(base, 4, {1, 2, 1, 2}, "het_ckpt_4_");
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  EXPECT_EQ(FleetDigest(*two), FleetDigest(*serial));
  EXPECT_EQ(FleetDigest(*four), FleetDigest(*serial));

  // Per-cohort device counters partition the fleet exactly.
  const uint64_t wear = serial->metrics.counter("fleet.cohort.wear");
  const uint64_t legacy = serial->metrics.counter("fleet.cohort.legacy");
  EXPECT_EQ(wear + legacy, 8u);
  EXPECT_EQ(two->metrics.counter("fleet.cohort.wear"), wear);
  EXPECT_EQ(four->metrics.counter("fleet.cohort.legacy"), legacy);

  // The rendered report names the cohorts.
  const std::string text = RenderFleetReport(*serial);
  EXPECT_NE(text.find("wear"), std::string::npos) << text;
  EXPECT_NE(text.find("legacy"), std::string::npos) << text;
}

TEST(HeterogeneousFleetTest, RejectsInvalidProfiles) {
  FleetConfig config = ShardableFleet(4, 1);
  Cohort cohort;
  cohort.name = "bad";
  cohort.weight = 0;
  config.profile.cohorts = {cohort};
  EXPECT_EQ(RunFleet(config).status().code(), StatusCode::kInvalidArgument);
  config.profile.cohorts[0].weight = 1;
  config.profile.cohorts[0].apps = {"no-such-app"};
  EXPECT_FALSE(RunFleet(config).ok());
}

}  // namespace
}  // namespace amulet
