// Integration tests: AFT firmware builds, AmuletOS boot/dispatch, isolation
// between apps, fault policies, and the event loop.
#include <gtest/gtest.h>

#include "src/aft/aft.h"
#include "src/apps/app_sources.h"
#include "src/os/os.h"

namespace amulet {
namespace {

constexpr char kCounterApp[] = R"(
int count;
void on_init(void) {
  count = 0;
  amulet_timer_start(0, 1000);
}
void on_timer(int timer_id) {
  count++;
  amulet_display_digits(0, count);
}
)";

constexpr char kWildWriterApp[] = R"(
int target_lo;
int target_hi;
void on_init(void) {
  amulet_button_subscribe();
}
void on_button(int id) {
  int* p;
  if (id == 0) {
    p = (int*)target_lo;
  } else {
    p = (int*)target_hi;
  }
  *p = 0x4141;
}
)";

Firmware MustBuild(const std::vector<AppSource>& apps, MemoryModel model) {
  AftOptions options;
  options.model = model;
  auto fw = BuildFirmware(apps, options);
  EXPECT_TRUE(fw.ok()) << fw.status().ToString();
  if (!fw.ok()) {
    return Firmware{};
  }
  return std::move(*fw);
}

class AllModelsTest : public ::testing::TestWithParam<MemoryModel> {};

TEST_P(AllModelsTest, LayoutInvariants) {
  Firmware fw = MustBuild({{"alpha", kCounterApp}, {"beta", kCounterApp}}, GetParam());
  ASSERT_EQ(fw.apps.size(), 2u);
  uint16_t prev_end = kFramStart;
  for (const AppImage& app : fw.apps) {
    EXPECT_GE(app.code_lo, prev_end);
    EXPECT_LT(app.code_lo, app.code_hi);
    EXPECT_EQ(app.code_hi, app.data_lo) << "data directly above code (Figure 1)";
    EXPECT_LT(app.data_lo, app.data_hi);
    EXPECT_EQ(app.code_lo % 16, 0) << "MPU granularity";
    EXPECT_EQ(app.data_lo % 16, 0);
    EXPECT_EQ(app.data_hi % 16, 0);
    EXPECT_GT(app.stack_top, app.data_lo) << "stack below the globals, grows down";
    EXPECT_GE(app.stack_bytes, 128);
    EXPECT_NE(app.dispatch_addr, 0);
    EXPECT_NE(app.handlers[static_cast<size_t>(EventType::kInit)], 0);
    prev_end = app.data_hi;
  }
  EXPECT_LE(prev_end, kFramEnd);
  EXPECT_NE(fw.nmi_handler, 0);
}

TEST_P(AllModelsTest, BootAndTimerDispatch) {
  Firmware fw = MustBuild({{"counter", kCounterApp}}, GetParam());
  Machine machine;
  AmuletOs os(&machine, std::move(fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  ASSERT_TRUE(os.RunFor(5500).ok());
  // Five seconds -> five timer ticks.
  EXPECT_EQ(os.stats(0).dispatches, 1u + 5u);  // on_init + 5 timers
  auto display = os.display(0);
  ASSERT_EQ(display.count(0), 1u);
  EXPECT_EQ(display.at(0), 5);
  EXPECT_TRUE(os.faults().empty());
}

TEST_P(AllModelsTest, SuiteAppsAllBuildTogether) {
  std::vector<AppSource> sources;
  for (const AppSpec& app : AmuletAppSuite()) {
    sources.push_back({app.name, app.source});
  }
  Firmware fw = MustBuild(sources, GetParam());
  EXPECT_EQ(fw.apps.size(), AmuletAppSuite().size());
}

INSTANTIATE_TEST_SUITE_P(Models, AllModelsTest,
                         ::testing::Values(MemoryModel::kNoIsolation,
                                           MemoryModel::kFeatureLimited, MemoryModel::kMpu,
                                           MemoryModel::kSoftwareOnly));

// ---------------------------------------------------------------------------
// Cross-app isolation
// ---------------------------------------------------------------------------

struct IsolationRig {
  Machine machine;
  std::unique_ptr<AmuletOs> os;
  uint16_t victim_global = 0;

  // victim app first (lower memory), attacker second (higher memory).
  void Build(MemoryModel model, FaultPolicy policy = FaultPolicy::kLogOnly) {
    Firmware fw = MustBuild({{"victim", kCounterApp}, {"attacker", kWildWriterApp}}, model);
    victim_global = fw.image.SymbolOrZero("victim_g_count");
    ASSERT_NE(victim_global, 0);
    // Point the attacker's wild pointers at the victim's global (below the
    // attacker) and at its own data_hi + 0x10 (above the attacker).
    uint16_t lo_sym = fw.image.SymbolOrZero("attacker_g_target_lo");
    uint16_t hi_sym = fw.image.SymbolOrZero("attacker_g_target_hi");
    ASSERT_NE(lo_sym, 0);
    ASSERT_NE(hi_sym, 0);
    OsOptions options;
    options.fault_policy = policy;
    os = std::make_unique<AmuletOs>(&machine, std::move(fw), options);
    ASSERT_TRUE(os->Boot().ok());
    machine.bus().PokeWord(lo_sym, victim_global);
    machine.bus().PokeWord(hi_sym,
                           static_cast<uint16_t>(os->firmware().apps[1].data_hi + 0x10));
  }
};

TEST(IsolationOsTest, SoftwareOnlyBlocksBothDirections) {
  IsolationRig rig;
  rig.Build(MemoryModel::kSoftwareOnly);
  uint16_t before = rig.machine.bus().PeekWord(rig.victim_global);
  ASSERT_TRUE(rig.os->Deliver(1, EventType::kButton, 0).ok());  // below attacker
  ASSERT_TRUE(rig.os->Deliver(1, EventType::kButton, 1).ok());  // above attacker
  EXPECT_EQ(rig.os->faults().size(), 2u);
  EXPECT_EQ(rig.machine.bus().PeekWord(rig.victim_global), before)
      << "victim memory must be untouched";
}

TEST(IsolationOsTest, MpuBlocksBothDirections) {
  IsolationRig rig;
  rig.Build(MemoryModel::kMpu);
  uint16_t before = rig.machine.bus().PeekWord(rig.victim_global);
  // Below the app: caught by the compiler's lower-bound check.
  ASSERT_TRUE(rig.os->Deliver(1, EventType::kButton, 0).ok());
  ASSERT_EQ(rig.os->faults().size(), 1u);
  EXPECT_FALSE(rig.os->faults()[0].from_mpu) << "lower bound is the compiler's job";
  // Above the app: caught by the MPU (segment 3 no-access).
  ASSERT_TRUE(rig.os->Deliver(1, EventType::kButton, 1).ok());
  ASSERT_EQ(rig.os->faults().size(), 2u);
  EXPECT_TRUE(rig.os->faults()[1].from_mpu) << "upper bound is MPU hardware";
  EXPECT_EQ(rig.machine.bus().PeekWord(rig.victim_global), before);
}

TEST(IsolationOsTest, NoIsolationAllowsCorruption) {
  IsolationRig rig;
  rig.Build(MemoryModel::kNoIsolation);
  ASSERT_TRUE(rig.os->Deliver(1, EventType::kButton, 0).ok());
  EXPECT_TRUE(rig.os->faults().empty());
  EXPECT_EQ(rig.machine.bus().PeekWord(rig.victim_global), 0x4141)
      << "baseline really is unprotected";
}

TEST(IsolationOsTest, StackOverflowFaultsUnderMpu) {
  // Unbounded recursion: the stack descends across the MPU boundary into the
  // app's execute-only code segment and the write faults.
  constexpr char kOverflow[] = R"(
int depth;
int burn(int n) {
  depth++;
  return burn(n + 1) + n;
}
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) { depth = 0; burn(1); }
)";
  Firmware fw = MustBuild({{"deep", kOverflow}}, MemoryModel::kMpu);
  EXPECT_FALSE(fw.apps[0].stack_statically_bounded);
  Machine machine;
  OsOptions options;
  options.fault_policy = FaultPolicy::kLogOnly;
  AmuletOs os(&machine, std::move(fw), options);
  ASSERT_TRUE(os.Boot().ok());
  ASSERT_TRUE(os.Deliver(0, EventType::kButton, 0).ok());
  ASSERT_EQ(os.faults().size(), 1u);
  EXPECT_TRUE(os.faults()[0].from_mpu);
}

// ---------------------------------------------------------------------------
// Fault policies
// ---------------------------------------------------------------------------

TEST(FaultPolicyTest, RestartResetsGlobalsAndRerunsInit) {
  constexpr char kFaulty[] = R"(
int runs;
void on_init(void) {
  runs = runs + 1;
  amulet_log_value(5, runs);
  amulet_button_subscribe();
}
void on_button(int id) {
  int* p = (int*)0x1C00;
  *p = 1;
}
)";
  Firmware fw = MustBuild({{"crashy", kFaulty}}, MemoryModel::kSoftwareOnly);
  Machine machine;
  OsOptions options;
  options.fault_policy = FaultPolicy::kRestartApp;
  AmuletOs os(&machine, std::move(fw), options);
  ASSERT_TRUE(os.Boot().ok());
  ASSERT_TRUE(os.Deliver(0, EventType::kButton, 0).ok());
  EXPECT_EQ(os.stats(0).faults, 1u);
  EXPECT_EQ(os.stats(0).restarts, 1u);
  // Globals were reset before on_init re-ran: runs is 1 both times.
  ASSERT_EQ(os.log().size(), 2u);
  EXPECT_EQ(os.log()[0].value, 1);
  EXPECT_EQ(os.log()[1].value, 1);
}

TEST(FaultPolicyTest, DisableStopsDelivery) {
  constexpr char kFaulty[] = R"(
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) {
  int* p = (int*)0x0000;
  *p = 1;
}
)";
  Firmware fw = MustBuild({{"crashy", kFaulty}}, MemoryModel::kSoftwareOnly);
  Machine machine;
  OsOptions options;
  options.fault_policy = FaultPolicy::kDisableApp;
  AmuletOs os(&machine, std::move(fw), options);
  ASSERT_TRUE(os.Boot().ok());
  ASSERT_TRUE(os.Deliver(0, EventType::kButton, 0).ok());
  EXPECT_FALSE(os.app_enabled(0));
  uint64_t dispatches = os.stats(0).dispatches;
  ASSERT_TRUE(os.Deliver(0, EventType::kButton, 0).ok());
  EXPECT_EQ(os.stats(0).dispatches, dispatches) << "disabled app gets no events";
}

// ---------------------------------------------------------------------------
// Event loop + real apps
// ---------------------------------------------------------------------------

TEST(EventLoopTest, PedometerCountsStepsWhileWalking) {
  const AppSpec& ped = [] {
    for (const AppSpec& app : AmuletAppSuite()) {
      if (app.name == "pedometer") {
        return app;
      }
    }
    return AmuletAppSuite()[0];
  }();
  Firmware fw = MustBuild({{ped.name, ped.source}}, MemoryModel::kMpu);
  Machine machine;
  AmuletOs os(&machine, std::move(fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  os.sensors().set_mode(ActivityMode::kWalking);
  ASSERT_TRUE(os.RunFor(30'000).ok());  // 30 s of walking at 20 Hz
  EXPECT_TRUE(os.faults().empty());
  uint16_t steps_addr = os.firmware().image.SymbolOrZero("pedometer_g_steps");
  ASSERT_NE(steps_addr, 0);
  int steps = machine.bus().PeekWord(steps_addr);
  // ~1.8 steps/s for 30 s: expect a plausible count, not an exact one.
  EXPECT_GT(steps, 20) << "should detect most steps";
  EXPECT_LT(steps, 120) << "should not wildly overcount";
}

TEST(EventLoopTest, ClockTracksSimulatedTime) {
  const AppSpec* clock = nullptr;
  for (const AppSpec& app : AmuletAppSuite()) {
    if (app.name == "clock") {
      clock = &app;
    }
  }
  ASSERT_NE(clock, nullptr);
  Firmware fw = MustBuild({{clock->name, clock->source}}, MemoryModel::kSoftwareOnly);
  Machine machine;
  AmuletOs os(&machine, std::move(fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  ASSERT_TRUE(os.RunFor(125'000).ok());
  auto display = os.display(0);
  ASSERT_EQ(display.count(1), 1u);
  EXPECT_EQ(display.at(1), 2) << "two minutes elapsed";
}

TEST(EventLoopTest, NineAppSuiteRunsConcurrently) {
  std::vector<AppSource> sources;
  for (const AppSpec& app : AmuletAppSuite()) {
    sources.push_back({app.name, app.source});
  }
  Firmware fw = MustBuild(sources, MemoryModel::kMpu);
  Machine machine;
  AmuletOs os(&machine, std::move(fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  os.sensors().set_mode(ActivityMode::kWalking);
  ASSERT_TRUE(os.RunFor(10'000).ok());
  EXPECT_TRUE(os.faults().empty()) << os.StatusReport();
  // The high-rate apps must actually have run.
  const Firmware& fw_ref = os.firmware();
  for (size_t i = 0; i < fw_ref.apps.size(); ++i) {
    if (fw_ref.apps[i].name == "pedometer" || fw_ref.apps[i].name == "falldetection") {
      EXPECT_GT(os.stats(static_cast<int>(i)).dispatches, 30u) << fw_ref.apps[i].name;
    }
  }
}

TEST(EventLoopTest, ButtonDeliveredOnlyToSubscribers) {
  constexpr char kNoButton[] = R"(
void on_init(void) { }
void on_button(int id) { amulet_log_value(1, id); }
)";
  constexpr char kWithButton[] = R"(
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) { amulet_log_value(2, id); }
)";
  Firmware fw = MustBuild({{"quiet", kNoButton}, {"listener", kWithButton}},
                          MemoryModel::kMpu);
  Machine machine;
  AmuletOs os(&machine, std::move(fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  ASSERT_TRUE(os.PressButton(3).ok());
  ASSERT_EQ(os.log().size(), 1u);
  EXPECT_EQ(os.log()[0].tag, 2);
  EXPECT_EQ(os.log()[0].value, 3);
}

TEST(BenchmarkAppsTest, SyntheticRunsUnderAllModels) {
  for (MemoryModel model : kAllModels) {
    const AppSpec& app = SyntheticApp();
    Firmware fw = MustBuild({{app.name, app.source}}, model);
    Machine machine;
    AmuletOs os(&machine, std::move(fw), OsOptions{});
    ASSERT_TRUE(os.Boot().ok());
    for (int button = 0; button <= 2; ++button) {
      ASSERT_TRUE(os.Deliver(0, EventType::kButton, static_cast<uint16_t>(button)).ok())
          << MemoryModelName(model);
    }
    EXPECT_TRUE(os.faults().empty()) << MemoryModelName(model);
  }
}

TEST(BenchmarkAppsTest, QuicksortSortsUnderAllModels) {
  for (MemoryModel model : kAllModels) {
    const AppSpec& app = QuicksortApp();
    Firmware fw = MustBuild({{app.name, app.source}}, model);
    Machine machine;
    AmuletOs os(&machine, std::move(fw), OsOptions{});
    ASSERT_TRUE(os.Boot().ok());
    ASSERT_TRUE(os.Deliver(0, EventType::kButton, 1).ok());
    EXPECT_TRUE(os.faults().empty()) << MemoryModelName(model);
    uint16_t ok_addr = os.firmware().image.SymbolOrZero("quicksort_g_sorted_ok");
    ASSERT_NE(ok_addr, 0);
    EXPECT_EQ(machine.bus().PeekWord(ok_addr), 1u) << MemoryModelName(model);
  }
}

TEST(BenchmarkAppsTest, ActivityCasesProduceResults) {
  const AppSpec& app = ActivityApp();
  Firmware fw = MustBuild({{app.name, app.source}}, MemoryModel::kMpu);
  Machine machine;
  AmuletOs os(&machine, std::move(fw), OsOptions{});
  ASSERT_TRUE(os.Boot().ok());
  os.sensors().set_mode(ActivityMode::kWalking);
  ASSERT_TRUE(os.RunFor(5000).ok());  // fill windows with accel data
  ASSERT_TRUE(os.Deliver(0, EventType::kButton, 1).ok());
  ASSERT_TRUE(os.Deliver(0, EventType::kButton, 2).ok());
  EXPECT_TRUE(os.faults().empty());
  EXPECT_EQ(os.log().size(), 2u);
}

// Context-switch cost ordering (Table 1's second row, as a coarse invariant).
TEST(CostShapeTest, ContextSwitchCosts) {
  std::map<MemoryModel, uint64_t> cost;
  for (MemoryModel model : kAllModels) {
    const AppSpec& app = SyntheticApp();
    Firmware fw = MustBuild({{app.name, app.source}}, model);
    Machine machine;
    OsOptions options;
    options.fram_wait_states = 1;
    AmuletOs os(&machine, std::move(fw), options);
    ASSERT_TRUE(os.Boot().ok());
    auto r = os.Deliver(0, EventType::kButton, 2);  // 512 API calls
    ASSERT_TRUE(r.ok());
    cost[model] = r->cycles;
  }
  EXPECT_EQ(cost[MemoryModel::kNoIsolation], cost[MemoryModel::kFeatureLimited])
      << "both use the shared stack and no MPU";
  EXPECT_GT(cost[MemoryModel::kSoftwareOnly], cost[MemoryModel::kNoIsolation])
      << "per-app stacks add switch cost";
  EXPECT_GT(cost[MemoryModel::kMpu], cost[MemoryModel::kSoftwareOnly])
      << "MPU reconfiguration dominates (paper: 142 vs 98)";
}

TEST(CostShapeTest, MemoryAccessCosts) {
  // Measured at zero FRAM wait states: isolates the inserted check cost from
  // the FRAM-stack traffic amplification of our naive (slot-based) codegen.
  // See EXPERIMENTS.md, Table 1 discussion.
  std::map<MemoryModel, uint64_t> cost;
  for (MemoryModel model : kAllModels) {
    const AppSpec& app = SyntheticApp();
    // The synthetic app's masked index is provably in bounds, so phase 2.5
    // would elide every check; this test measures the per-check cost shape.
    AftOptions aft;
    aft.model = model;
    aft.optimize_checks = false;
    auto built = BuildFirmware({{app.name, app.source}}, aft);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    Firmware fw = std::move(*built);
    Machine machine;
    OsOptions options;
    options.fram_wait_states = 0;
    AmuletOs os(&machine, std::move(fw), options);
    ASSERT_TRUE(os.Boot().ok());
    auto r = os.Deliver(0, EventType::kButton, 1);  // 512 checked accesses
    ASSERT_TRUE(r.ok());
    cost[model] = r->cycles;
  }
  EXPECT_GT(cost[MemoryModel::kMpu], cost[MemoryModel::kNoIsolation]) << "one check";
  EXPECT_GT(cost[MemoryModel::kSoftwareOnly], cost[MemoryModel::kMpu]) << "two checks";
  EXPECT_GT(cost[MemoryModel::kFeatureLimited], cost[MemoryModel::kSoftwareOnly])
      << "routine-call bounds check is the most expensive (Table 1: 41)";
}

}  // namespace
}  // namespace amulet
