// Observability subsystem tests (src/scope): region-map recovery from scope
// labels, exact cycle attribution, event-tracer ring + Chrome trace JSON
// round-trip, and streaming-metrics merge semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/aft/aft.h"
#include "src/apps/app_sources.h"
#include "src/common/binio.h"
#include "src/os/os.h"
#include "src/scope/firmware_map.h"
#include "src/scope/json.h"
#include "src/scope/metrics.h"
#include "src/scope/profiler.h"
#include "src/scope/region_map.h"
#include "src/scope/tracer.h"

namespace amulet {
namespace {

// ---------------------------------------------------------------------------
// Region map

TEST(RegionMapTest, MnemonicsRoundTrip) {
  EXPECT_EQ(RegionTagForMnemonic("cklo"), RegionTag::kCheckLow);
  EXPECT_EQ(RegionTagForMnemonic("ckhi"), RegionTag::kCheckHigh);
  EXPECT_EQ(RegionTagForMnemonic("ckix"), RegionTag::kCheckIndex);
  EXPECT_EQ(RegionTagForMnemonic("ckret"), RegionTag::kCheckRet);
  EXPECT_EQ(RegionTagForMnemonic("mpur"), RegionTag::kMpuReconfig);
  EXPECT_EQ(RegionTagForMnemonic("gate"), RegionTag::kGate);
  EXPECT_EQ(RegionTagForMnemonic("disp"), RegionTag::kDispatch);
  EXPECT_EQ(RegionTagForMnemonic("rt"), RegionTag::kRuntime);
  EXPECT_EQ(RegionTagForMnemonic("bogus"), RegionTag::kOther);
}

TEST(RegionMapTest, ParsesPairedLabelsAndSkipsStrays) {
  std::map<std::string, uint16_t> symbols = {
      {"__scope_b_cklo_f_S0", 0x4400},
      {"__scope_e_cklo_f_S0", 0x4410},
      {"__scope_b_mpur_g0", 0x5000},
      {"__scope_e_mpur_g0", 0x5020},
      {"__scope_b_gate_orphan", 0x6000},   // no matching end: skipped
      {"__scope_e_disp_orphan2", 0x6100},  // no matching begin: skipped
      {"__scope_b_zzz_x", 0x7000},         // unknown mnemonic: skipped
      {"__scope_e_zzz_x", 0x7010},
      {"unrelated_symbol", 0x4000},
  };
  std::vector<ScopeSpan> spans = ParseScopeSpans(symbols);
  ASSERT_EQ(spans.size(), 2u);
  bool saw_check = false;
  bool saw_mpur = false;
  for (const ScopeSpan& span : spans) {
    if (span.tag == RegionTag::kCheckLow) {
      saw_check = true;
      EXPECT_EQ(span.lo, 0x4400);
      EXPECT_EQ(span.hi, 0x4410);
      EXPECT_EQ(span.id, "f_S0");
    }
    if (span.tag == RegionTag::kMpuReconfig) {
      saw_mpur = true;
    }
  }
  EXPECT_TRUE(saw_check);
  EXPECT_TRUE(saw_mpur);
}

TEST(RegionMapTest, FinestSpanWinsRegardlessOfInputOrder) {
  // A check span nested inside a gate span: the check tag must win for its
  // bytes whichever order the spans arrive in.
  std::vector<ScopeSpan> forward = {
      {RegionTag::kGate, "gate", "g", 0x5000, 0x5100},
      {RegionTag::kCheckLow, "cklo", "c", 0x5040, 0x5050},
  };
  std::vector<ScopeSpan> reversed = {forward[1], forward[0]};
  for (const auto& spans : {forward, reversed}) {
    RegionMap map;
    PaintScopeSpans(spans, &map);
    EXPECT_EQ(map.At(0x5000), RegionTag::kGate);
    EXPECT_EQ(map.At(0x5045), RegionTag::kCheckLow);
    EXPECT_EQ(map.At(0x50FF), RegionTag::kGate);
    EXPECT_EQ(map.At(0x5100), RegionTag::kOther);
  }
}

TEST(RegionMapTest, FirmwareMapTagsChecksGatesAndApps) {
  AftOptions options;
  options.model = MemoryModel::kSoftwareOnly;
  // The synthetic app's masked accesses are provably safe, so the phase-2.5
  // optimizer would delete every check; this test maps the checked pipeline.
  options.optimize_checks = false;
  const AppSpec& app = SyntheticApp();
  auto fw = BuildFirmware({{app.name, app.source}}, options);
  ASSERT_TRUE(fw.ok()) << fw.status().ToString();
  RegionMap map = BuildRegionMap(*fw);
  EXPECT_GT(map.TaggedBytes(RegionTag::kApp), 0u);
  EXPECT_GT(map.TaggedBytes(RegionTag::kGate), 0u);
  EXPECT_GT(map.TaggedBytes(RegionTag::kDispatch), 0u);
  EXPECT_GT(map.TaggedBytes(RegionTag::kCheckLow), 0u);
  EXPECT_GT(map.TaggedBytes(RegionTag::kCheckHigh), 0u);  // SW: dual compares
  // SoftwareOnly firmware programs no MPU at gate time.
  EXPECT_EQ(map.TaggedBytes(RegionTag::kMpuReconfig), 0u);
}

// ---------------------------------------------------------------------------
// Profiler

TEST(ProfilerTest, BucketsCyclesByRegionTag) {
  RegionMap map;
  map.Paint(0x4000, 0x4100, RegionTag::kApp);
  map.Paint(0x4100, 0x4110, RegionTag::kCheckLow);
  CycleProfiler profiler(std::move(map));
  profiler.Attribute(0x4000, 3);
  profiler.Attribute(0x4105, 4);
  profiler.Attribute(0x9000, 1);  // unpainted
  EXPECT_EQ(profiler.cycles(RegionTag::kApp), 3u);
  EXPECT_EQ(profiler.cycles(RegionTag::kCheckLow), 4u);
  EXPECT_EQ(profiler.cycles(RegionTag::kOther), 1u);
  EXPECT_EQ(profiler.retired(RegionTag::kApp), 1u);
  EXPECT_EQ(profiler.total_cycles(), 8u);
  EXPECT_EQ(profiler.check_cycles(), 4u);
  profiler.Reset();
  EXPECT_EQ(profiler.total_cycles(), 0u);
}

#ifdef AMULET_SCOPE_ENABLED
TEST(ProfilerTest, AttributedCyclesEqualCpuCycles) {
  AftOptions options;
  options.model = MemoryModel::kMpu;
  // Keep the checks: attribution needs cklo spans to land cycles in.
  options.optimize_checks = false;
  const AppSpec& app = SyntheticApp();
  auto fw = BuildFirmware({{app.name, app.source}}, options);
  ASSERT_TRUE(fw.ok()) << fw.status().ToString();
  CycleProfiler profiler(BuildRegionMap(*fw));
  Machine machine;
  AmuletOs os(&machine, std::move(*fw), OsOptions{});
  machine.AttachProfiler(&profiler);
  ASSERT_TRUE(os.Boot().ok());
  profiler.Reset();
  const uint64_t before = machine.cpu().cycle_count();
  auto r = os.Deliver(0, EventType::kButton, 1);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->faulted);
  // Exact attribution: every retired cycle lands in exactly one bucket.
  EXPECT_EQ(profiler.total_cycles(), machine.cpu().cycle_count() - before);
  // The MPU model's checked-store loop spends cycles in lower-bound checks
  // and none in upper-bound ones.
  EXPECT_GT(profiler.cycles(RegionTag::kCheckLow), 0u);
  EXPECT_EQ(profiler.cycles(RegionTag::kCheckHigh), 0u);
}
#endif  // AMULET_SCOPE_ENABLED

// ---------------------------------------------------------------------------
// Tracer + Chrome trace JSON

#ifdef AMULET_SCOPE_ENABLED
// The golden-file test: a short app run must render to Chrome trace JSON
// that parses back cleanly with correctly nested spans for the syscall and
// MPU-reprogramming probes.
TEST(TracerTest, ShortAppRunRendersValidNestedChromeTrace) {
  AftOptions options;
  options.model = MemoryModel::kMpu;
  const AppSpec& app = SyntheticApp();
  auto fw = BuildFirmware({{app.name, app.source}}, options);
  ASSERT_TRUE(fw.ok()) << fw.status().ToString();
  EventTracer tracer;
  Machine machine;
  AmuletOs os(&machine, std::move(*fw), OsOptions{});
  os.AttachTracer(&tracer);  // before Boot: on_init dispatches are traced too
  ASSERT_TRUE(os.Boot().ok());
  auto r = os.Deliver(0, EventType::kButton, 2);  // API-call loop -> syscalls
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->faulted);

  // Walk the raw ring: "syscall" and "mpu.reconfig" spans must always begin
  // inside an open "os.dispatch" span.
  std::vector<std::string> open;
  size_t syscall_begins = 0;
  size_t reconfig_begins = 0;
  for (const TraceEvent& event : tracer.Events()) {
    const std::string name = event.name;
    if (event.phase == 'B') {
      if (name == "syscall") {
        ++syscall_begins;
        ASSERT_FALSE(open.empty());
        EXPECT_EQ(open[0], "os.dispatch");
      }
      if (name == "mpu.reconfig") {
        ++reconfig_begins;
        ASSERT_FALSE(open.empty());
        EXPECT_EQ(open[0], "os.dispatch");
      }
      open.push_back(name);
    } else if (event.phase == 'E') {
      ASSERT_FALSE(open.empty()) << "unbalanced 'E' for " << name;
      EXPECT_EQ(open.back(), name);
      open.pop_back();
    }
  }
  EXPECT_TRUE(open.empty());
  EXPECT_GT(syscall_begins, 0u);
  EXPECT_GT(reconfig_begins, 0u);

  // Render and parse back.
  const std::string json = RenderChromeTrace(tracer, /*cpu_mhz=*/16.0);
  auto validation = ValidateChromeTrace(json);
  ASSERT_TRUE(validation.ok()) << validation.status().ToString();
  EXPECT_EQ(validation->events, tracer.Events().size());
  EXPECT_EQ(validation->begins, validation->ends);
  EXPECT_GE(validation->max_depth, 2);  // syscall/reconfig under os.dispatch
  EXPECT_TRUE(validation->timestamps_monotonic);
  EXPECT_NE(json.find("\"name\":\"os.dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"syscall\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mpu.reconfig\""), std::string::npos);
}
#endif  // AMULET_SCOPE_ENABLED

TEST(TracerTest, RingWrapStillRendersWellFormedTrace) {
  EventTracer tracer(/*capacity=*/6);
  uint64_t now = 0;
  tracer.set_clock([&now] { return now++; });
  for (int i = 0; i < 10; ++i) {
    tracer.Begin("outer");
    tracer.Begin("inner", static_cast<uint32_t>(i));
    tracer.Instant("tick");
    tracer.End("inner");
    tracer.End("outer");
  }
  tracer.Begin("open_at_horizon");
  EXPECT_EQ(tracer.Events().size(), 6u);
  EXPECT_GT(tracer.dropped(), 0u);
  // The surviving window starts with orphaned E's and ends with an open B;
  // the renderer must drop the former and close the latter.
  const std::string json = RenderChromeTrace(tracer, 16.0);
  auto validation = ValidateChromeTrace(json);
  ASSERT_TRUE(validation.ok()) << validation.status().ToString();
  EXPECT_EQ(validation->begins, validation->ends);
  EXPECT_TRUE(validation->timestamps_monotonic);
}

TEST(TracerTest, ValidatorRejectsMalformedTraces) {
  EXPECT_FALSE(ValidateChromeTrace("not json").ok());
  EXPECT_FALSE(ValidateChromeTrace("{}").ok());  // no traceEvents
  // Mismatched nesting: E for a name that is not the innermost open span.
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents":[)"
                   R"({"name":"a","ph":"B","ts":0,"pid":1,"tid":1},)"
                   R"({"name":"b","ph":"B","ts":1,"pid":1,"tid":1},)"
                   R"({"name":"a","ph":"E","ts":2,"pid":1,"tid":1}]})")
                   .ok());
  // Span left open.
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]})")
                   .ok());
  // 'E' with nothing open.
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents":[{"name":"a","ph":"E","ts":0,"pid":1,"tid":1}]})")
                   .ok());
}

TEST(TracerTest, ValidatorAcceptsIndependentTracks) {
  // Same span names interleaved on two tids: fine, nesting is per-track.
  auto v = ValidateChromeTrace(
      R"({"traceEvents":[)"
      R"({"name":"a","ph":"B","ts":0,"pid":1,"tid":1},)"
      R"({"name":"b","ph":"B","ts":1,"pid":1,"tid":2},)"
      R"({"name":"a","ph":"E","ts":2,"pid":1,"tid":1},)"
      R"({"name":"b","ph":"E","ts":3,"pid":1,"tid":2}]})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->events, 4u);
  EXPECT_EQ(v->max_depth, 1);
}

// ---------------------------------------------------------------------------
// Streaming metrics

TEST(MetricsTest, LogHistogramBucketBoundaries) {
  EXPECT_EQ(LogHistogram::BucketOf(0), 0);
  EXPECT_EQ(LogHistogram::BucketOf(1), 1);
  EXPECT_EQ(LogHistogram::BucketOf(2), 2);
  EXPECT_EQ(LogHistogram::BucketOf(3), 2);
  EXPECT_EQ(LogHistogram::BucketOf(4), 3);
  EXPECT_EQ(LogHistogram::BucketOf(7), 3);
  EXPECT_EQ(LogHistogram::BucketOf(UINT64_MAX), 64);
  LogHistogram h;
  h.Record(0);
  h.Record(5);
  h.Record(1000);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 1005u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1000u);
  // Quantiles are monotone in q and bounded by [min, max].
  EXPECT_LE(h.Quantile(0.0), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(1.0));
  EXPECT_GE(h.Quantile(0.0), h.min);
  EXPECT_LE(h.Quantile(1.0), h.max);
}

TEST(MetricsTest, MergeIsOrderIndependent) {
  auto make = [](uint64_t seed) {
    MetricRegistry r;
    r.Add("counter.a", seed);
    r.Add("counter.b", seed * 3 + 1);
    for (uint64_t i = 0; i < 20; ++i) {
      r.Observe("hist.x", seed * 1000 + i * i);
      r.Observe("hist.y", (seed + i) % 7);
    }
    return r;
  };
  MetricRegistry forward;
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    forward.Merge(make(seed));
  }
  MetricRegistry backward;
  for (uint64_t seed : {5, 4, 3, 2, 1}) {
    backward.Merge(make(seed));
  }
  // Associativity too: ((1+2)+(3+4))+5 with a nested intermediate.
  MetricRegistry left;
  left.Merge(make(1));
  left.Merge(make(2));
  MetricRegistry right;
  right.Merge(make(3));
  right.Merge(make(4));
  MetricRegistry tree;
  tree.Merge(left);
  tree.Merge(right);
  tree.Merge(make(5));

  EXPECT_EQ(forward.ToJson(), backward.ToJson());
  EXPECT_EQ(forward.ToJson(), tree.ToJson());
  EXPECT_EQ(forward.counter("counter.a"), 1u + 2 + 3 + 4 + 5);
  ASSERT_NE(forward.histogram("hist.x"), nullptr);
  EXPECT_EQ(forward.histogram("hist.x")->count, 100u);
}

TEST(MetricsTest, MergedSizeIndependentOfMergeCount) {
  auto make = [](uint64_t seed) {
    MetricRegistry r;
    r.Add("fleet.devices", 1);
    r.Add("fleet.cycles", seed * 12345);
    r.Observe("device.cycles", seed * 12345);
    r.Observe("device.syscalls", seed % 97);
    return r;
  };
  MetricRegistry hundred;
  for (uint64_t i = 0; i < 100; ++i) {
    hundred.Merge(make(i));
  }
  const size_t bytes_at_100 = hundred.ApproxBytes();
  MetricRegistry ten_thousand;
  for (uint64_t i = 0; i < 10'000; ++i) {
    ten_thousand.Merge(make(i));
  }
  // Constant-size representation: 100x the merges, zero growth.
  EXPECT_EQ(ten_thousand.ApproxBytes(), bytes_at_100);
  EXPECT_EQ(ten_thousand.counter("fleet.devices"), 10'000u);
}

TEST(MetricsTest, JsonIsDeterministicWithSortedKeys) {
  MetricRegistry r;
  r.Add("b.counter", 2);
  r.Add("a.counter", 1);
  r.Observe("z.hist", 42);
  const std::string json = r.ToJson();
  EXPECT_EQ(json, r.ToJson());
  // Keys render in map order regardless of insertion order.
  EXPECT_LT(json.find("a.counter"), json.find("b.counter"));
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

// Regression: nearest-rank quantiles must take ceil(q * count) with an
// integer ceiling. Ten observations in distinct buckets (2^0 .. 2^9) make
// every rank land in a different bucket; q=0.95 -> rank 10 -> the top value.
// The old truncation picked rank 9 and answered one bucket low (383).
TEST(MetricsTest, QuantileUsesCeilingRank) {
  LogHistogram h;
  for (int i = 0; i < 10; ++i) {
    h.Record(uint64_t{1} << i);
  }
  ASSERT_EQ(h.count, 10u);
  EXPECT_EQ(h.Quantile(0.95), 512u);
  EXPECT_EQ(h.Quantile(1.0), 512u);
  // q*count exactly integral takes that rank, not the next one up.
  EXPECT_EQ(h.Quantile(0.90), 383u);  // rank 9: bucket [256, 511] midpoint
  EXPECT_EQ(h.Quantile(0.05), 1u);    // rank ceil(0.5) = 1
}

TEST(MetricsTest, ToJsonEscapesMetricNames) {
  MetricRegistry r;
  r.Add("weird\"counter\\name", 3);
  r.Observe("hist\nwith\tcontrol", 7);
  const std::string json = r.ToJson();
  // The native parser (the same one ValidateChromeTrace uses) must accept it.
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("weird\\\"counter\\\\name"), std::string::npos) << json;
  // Parse back and confirm the counter survived under its unescaped name.
  Result<JsonValue> root = ParseJson(json);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  const JsonValue* counters = root->Field("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* value = counters->Field("weird\"counter\\name");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->number, 3.0);
}

TEST(MetricsTest, SaveLoadRoundTripIsBitExact) {
  MetricRegistry r;
  r.Add("fleet.devices", 123);
  r.Add("fleet.cycles", 987'654'321);
  for (uint64_t v : {1u, 5u, 900u, 1'000'000u}) {
    r.Observe("device.cycles", v);
    r.Observe("device.faults", v % 7);
  }

  SnapshotWriter w;
  r.SaveState(w);
  const std::vector<uint8_t> bytes = w.Take();

  MetricRegistry restored;
  restored.Add("stale.counter", 1);  // LoadState must replace, not merge
  SnapshotReader reader(bytes);
  ASSERT_TRUE(restored.LoadState(reader).ok());
  EXPECT_EQ(restored.ToJson(), r.ToJson());
  EXPECT_EQ(restored.counter("stale.counter"), 0u);
  EXPECT_EQ(restored.counter("fleet.devices"), 123u);

  // An empty registry round-trips too.
  MetricRegistry empty;
  SnapshotWriter we;
  empty.SaveState(we);
  const std::vector<uint8_t> empty_bytes = we.Take();
  SnapshotReader empty_reader(empty_bytes);
  ASSERT_TRUE(restored.LoadState(empty_reader).ok());
  EXPECT_TRUE(restored.empty());
}

TEST(MetricsTest, LoadRejectsTruncatedState) {
  MetricRegistry r;
  r.Add("fleet.devices", 9);
  r.Observe("device.cycles", 4096);
  SnapshotWriter w;
  r.SaveState(w);
  std::vector<uint8_t> bytes = w.Take();
  ASSERT_GT(bytes.size(), 4u);
  bytes.resize(bytes.size() - 3);
  SnapshotReader reader(bytes);
  MetricRegistry restored;
  EXPECT_FALSE(restored.LoadState(reader).ok());
}

}  // namespace
}  // namespace amulet
