#include <gtest/gtest.h>

#include "src/asm/assembler.h"
#include "src/asm/linker.h"
#include "src/asm/ihex.h"
#include "src/isa/encoding.h"
#include "tests/sim_test_util.h"

namespace amulet {
namespace {

ObjectFile MustAssemble(const std::string& source) {
  auto object = Assemble(source, "t.s");
  EXPECT_TRUE(object.ok()) << object.status().ToString();
  return std::move(*object);
}

Image MustLink(ObjectFile object, std::vector<LayoutRule> layout) {
  Linker linker;
  linker.AddObject(std::move(object));
  auto image = linker.Link(layout);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return std::move(*image);
}

uint16_t WordAt(const Image& image, uint16_t addr) {
  for (const auto& [base, bytes] : image.chunks) {
    if (addr >= base && addr + 1u < base + bytes.size() + 1u) {
      return static_cast<uint16_t>(bytes[addr - base] | (bytes[addr - base + 1] << 8));
    }
  }
  ADD_FAILURE() << "address not in image";
  return 0;
}

TEST(AssemblerTest, BasicInstruction) {
  ObjectFile obj = MustAssemble("  mov r5, r6\n");
  ASSERT_EQ(obj.sections.size(), 1u);
  EXPECT_EQ(obj.sections[0].name, ".text");
  ASSERT_EQ(obj.sections[0].bytes.size(), 2u);
  // mov r5,r6 = 0x4506
  EXPECT_EQ(obj.sections[0].bytes[0], 0x06);
  EXPECT_EQ(obj.sections[0].bytes[1], 0x45);
}

TEST(AssemblerTest, CaseInsensitiveMnemonics) {
  ObjectFile a = MustAssemble("  MOV R5, R6\n");
  ObjectFile b = MustAssemble("  mov r5, r6\n");
  EXPECT_EQ(a.sections[0].bytes, b.sections[0].bytes);
}

TEST(AssemblerTest, CommentsIgnored) {
  ObjectFile obj = MustAssemble(
      "; full line comment\n"
      "  mov r5, r6  ; trailing\n"
      "  // c++ style\n");
  EXPECT_EQ(obj.sections[0].bytes.size(), 2u);
}

TEST(AssemblerTest, ConstantGeneratorChosenForLiterals) {
  // #1 uses the CG (1 word); #3 needs an extension word (2 words).
  ObjectFile cg = MustAssemble("  mov #1, r6\n");
  ObjectFile full = MustAssemble("  mov #3, r6\n");
  EXPECT_EQ(cg.sections[0].bytes.size(), 2u);
  EXPECT_EQ(full.sections[0].bytes.size(), 4u);
}

TEST(AssemblerTest, LabelsAndJumpResolution) {
  Image image = MustLink(MustAssemble("start:\n"
                                      "  jmp start\n"),
                         {{".text", 0x4400}});
  // jmp -1 word: 0x3FFF
  EXPECT_EQ(WordAt(image, 0x4400), 0x3FFF);
}

TEST(AssemblerTest, ForwardJump) {
  Image image = MustLink(MustAssemble("  jmp target\n"
                                      "  nop\n"
                                      "target:\n"
                                      "  nop\n"),
                         {{".text", 0x4400}});
  // skip one word: offset +1 -> 0x3C01
  EXPECT_EQ(WordAt(image, 0x4400), 0x3C01);
}

TEST(AssemblerTest, EquConstants) {
  ObjectFile obj = MustAssemble(".equ BASE, 0x0700\n"
                                "  mov #5, &BASE\n");
  auto bytes = obj.sections[0].bytes;
  ASSERT_EQ(bytes.size(), 6u);
  EXPECT_EQ(static_cast<uint16_t>(bytes[4] | (bytes[5] << 8)), 0x0700);
}

TEST(AssemblerTest, EquUsableBeforeDefinition) {
  ObjectFile obj = MustAssemble("  mov #5, &BASE\n"
                                ".equ BASE, 0x0700\n");
  auto bytes = obj.sections[0].bytes;
  ASSERT_EQ(bytes.size(), 6u);
  EXPECT_EQ(static_cast<uint16_t>(bytes[4] | (bytes[5] << 8)), 0x0700);
}

TEST(AssemblerTest, DataDirectives) {
  ObjectFile obj = MustAssemble(".data\n"
                                "  .word 0x1234, 5\n"
                                "  .byte 1, 2, 'a'\n"
                                "  .align\n"
                                "  .word 7\n"
                                "  .space 4\n"
                                "  .asciz \"hi\"\n");
  const auto& bytes = obj.FindSection(".data")->bytes;
  ASSERT_EQ(bytes.size(), 4u + 3 + 1 + 2 + 4 + 3);
  EXPECT_EQ(bytes[0], 0x34);
  EXPECT_EQ(bytes[1], 0x12);
  EXPECT_EQ(bytes[6], 'a');
  EXPECT_EQ(bytes[8], 7);
  EXPECT_EQ(bytes[14], 'h');
  EXPECT_EQ(bytes[16], '\0');
}

TEST(AssemblerTest, SymbolInWordDirectiveRelocated) {
  Image image = MustLink(MustAssemble(".data\n"
                                      "table:\n"
                                      "  .word handler\n"
                                      ".text\n"
                                      "handler:\n"
                                      "  nop\n"),
                         {{".text", 0x4400}, {".data", 0x7000}});
  EXPECT_EQ(WordAt(image, 0x7000), 0x4400);
}

TEST(AssemblerTest, SymbolPlusOffset) {
  Image image = MustLink(MustAssemble(".data\n"
                                      "  .word buf + 4\n"
                                      "buf:\n"
                                      "  .space 8\n"),
                         {{".data", 0x7000}});
  EXPECT_EQ(WordAt(image, 0x7000), 0x7002 + 4);
}

TEST(AssemblerTest, EmulatedMnemonicsExpand) {
  // Each expands to exactly one core instruction.
  for (const char* line : {"  nop\n", "  ret\n", "  clr r4\n", "  inc r4\n", "  dec r4\n",
                           "  tst r4\n", "  inv r4\n", "  dint\n", "  eint\n", "  clrc\n",
                           "  setc\n", "  pop r4\n", "  rla r4\n", "  adc r4\n"}) {
    ObjectFile obj = MustAssemble(line);
    EXPECT_EQ(obj.sections[0].bytes.size(), 2u) << line;
  }
}

TEST(AssemblerTest, RetIsMovSpIndirectToPc) {
  ObjectFile obj = MustAssemble("  ret\n");
  uint16_t word = static_cast<uint16_t>(obj.sections[0].bytes[0] |
                                        (obj.sections[0].bytes[1] << 8));
  auto decoded = Decode({{word}});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, Opcode::kMov);
  EXPECT_EQ(decoded->src.mode, AddrMode::kIndirectAutoInc);
  EXPECT_EQ(decoded->src.reg, Reg::kSp);
  EXPECT_EQ(decoded->dst.reg, Reg::kPc);
}

TEST(AssemblerTest, ByteSuffix) {
  ObjectFile obj = MustAssemble("  mov.b r5, r6\n");
  uint16_t word = static_cast<uint16_t>(obj.sections[0].bytes[0] |
                                        (obj.sections[0].bytes[1] << 8));
  auto decoded = Decode({{word}});
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->byte);
}

TEST(AssemblerTest, JumpAliases) {
  ObjectFile a = MustAssemble("x:\n  jne x\n");
  ObjectFile b = MustAssemble("x:\n  jnz x\n");
  EXPECT_EQ(a.sections[0].bytes, b.sections[0].bytes);
}

TEST(AssemblerTest, Errors) {
  EXPECT_FALSE(Assemble("  bogus r1, r2\n").ok());
  EXPECT_FALSE(Assemble("  mov r1\n").ok());          // wrong arity
  EXPECT_FALSE(Assemble("  mov r1, #5\n").ok());      // immediate destination
  EXPECT_FALSE(Assemble("  .word a + b\n").ok());     // two symbols
  EXPECT_FALSE(Assemble("  mov r99, r4\n").ok());     // no such register
  EXPECT_FALSE(Assemble("dup:\ndup:\n").ok());        // duplicate label
  EXPECT_FALSE(Assemble("  .unknown 3\n").ok());      // unknown directive
  EXPECT_FALSE(Assemble("  jmp 0x4400\n").ok());      // jump needs a label
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  auto result = Assemble("  nop\n  bogus\n", "unit.s");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unit.s:2"), std::string::npos)
      << result.status().message();
}

TEST(LinkerTest, MergesSectionsFromMultipleObjects) {
  Linker linker;
  linker.AddObject(MustAssemble("a:\n  nop\n"));
  linker.AddObject(MustAssemble("b:\n  nop\n  nop\n"));
  auto image = linker.Link({{".text", 0x4400}});
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->SymbolOrZero("a"), 0x4400);
  EXPECT_EQ(image->SymbolOrZero("b"), 0x4402);
}

TEST(LinkerTest, CrossObjectCall) {
  Linker linker;
  linker.AddObject(MustAssemble("start:\n  call #helper\n"));
  linker.AddObject(MustAssemble("helper:\n  ret\n"));
  auto image = linker.Link({{".text", 0x4400}});
  ASSERT_TRUE(image.ok());
  // call #X is 2 words; helper lands right after.
  EXPECT_EQ(image->SymbolOrZero("helper"), 0x4404);
}

TEST(LinkerTest, AbsoluteSymbols) {
  Linker linker;
  linker.AddObject(MustAssemble("  mov #5, &__bound\n"));
  linker.DefineAbsolute("__bound", 0x8000);
  auto image = linker.Link({{".text", 0x4400}});
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->SymbolOrZero("__bound"), 0x8000);
}

TEST(LinkerTest, UndefinedSymbolFails) {
  Linker linker;
  linker.AddObject(MustAssemble("  call #nowhere\n"));
  auto image = linker.Link({{".text", 0x4400}});
  EXPECT_FALSE(image.ok());
  EXPECT_NE(image.status().message().find("nowhere"), std::string::npos);
}

TEST(LinkerTest, DuplicateSymbolAcrossObjectsFails) {
  Linker linker;
  linker.AddObject(MustAssemble("f:\n  nop\n"));
  linker.AddObject(MustAssemble("f:\n  nop\n"));
  EXPECT_FALSE(linker.Link({{".text", 0x4400}}).ok());
}

TEST(LinkerTest, MissingLayoutRuleFails) {
  Linker linker;
  linker.AddObject(MustAssemble(".section .app\n  nop\n"));
  EXPECT_FALSE(linker.Link({{".text", 0x4400}}).ok());
}

TEST(LinkerTest, JumpOutOfRangeFails) {
  Linker linker;
  std::string source = "start:\n  jmp far\n.section .far\nfar:\n  nop\n";
  linker.AddObject(MustAssemble(source));
  auto image = linker.Link({{".text", 0x4400}, {".far", 0x9000}});
  EXPECT_FALSE(image.ok());
}

TEST(LinkerTest, SectionSizeQuery) {
  Linker linker;
  linker.AddObject(MustAssemble(".section .x\n  .space 6\n"));
  linker.AddObject(MustAssemble(".section .x\n  .space 3\n"));
  EXPECT_EQ(linker.SectionSize(".x"), 10u);  // 6 + 3 padded to 4
  EXPECT_EQ(linker.SectionSize(".nope"), 0u);
}

TEST(LinkerTest, OddPlacementRejected) {
  Linker linker;
  linker.AddObject(MustAssemble("  nop\n"));
  EXPECT_FALSE(linker.Link({{".text", 0x4401}}).ok());
}

TEST(LinkerTest, SymbolicAddressingLinksPcRelative) {
  // mov var, r5 with var in another section: ext word = var - ext_addr.
  Linker linker;
  linker.AddObject(MustAssemble("start:\n"
                                "  mov var, r5\n"
                                ".data\n"
                                "var:\n"
                                "  .word 55\n"));
  auto image = linker.Link({{".text", 0x4400}, {".data", 0x7000}});
  ASSERT_TRUE(image.ok());
  // ext word at 0x4402; expect 0x7000 - 0x4402.
  uint16_t ext = 0;
  for (const auto& [base, bytes] : image->chunks) {
    if (base == 0x4400) {
      ext = static_cast<uint16_t>(bytes[2] | (bytes[3] << 8));
    }
  }
  EXPECT_EQ(ext, static_cast<uint16_t>(0x7000 - 0x4402));
}


// ---------------------------------------------------------------------------
// Jump relaxation (out-of-range conditional/unconditional jumps)
// ---------------------------------------------------------------------------

std::string FarProgram(const char* jump_line, int filler_words) {
  std::string source = "start:\n";
  source += jump_line;
  source += "\n";
  // Filler: each 'nop' is one word.
  for (int i = 0; i < filler_words; ++i) {
    source += "  nop\n";
  }
  source += "target:\n  mov #1, r10\n  mov #4, &0x0710\n";
  return source;
}

TEST(RelaxationTest, ShortJumpStaysShort) {
  ObjectFile obj = MustAssemble(FarProgram("  jmp target", 10));
  // jmp (1 word) + 10 nops => target at offset 22.
  bool found = false;
  for (const AsmSymbol& sym : obj.symbols) {
    if (sym.name == "target") {
      EXPECT_EQ(sym.offset, 22u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RelaxationTest, FarUnconditionalJumpBecomesBr) {
  // 600 words of filler exceeds the +511-word range: jmp must relax to
  // br #target (3 words total program growth: 1 -> 2 words for the jump).
  ObjectFile obj = MustAssemble(FarProgram("  jmp target", 600));
  uint32_t target_offset = 0;
  for (const AsmSymbol& sym : obj.symbols) {
    if (sym.name == "target") {
      target_offset = sym.offset;
    }
  }
  EXPECT_EQ(target_offset, 2u * 2 + 600u * 2) << "br #target occupies two words";
}

TEST(RelaxationTest, FarJumpsExecuteCorrectly) {
  Machine m;
  auto out = RunAsm(&m, FarProgram("  jmp target", 600), 100000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 1);
}

TEST(RelaxationTest, FarConditionalJumpInvertsAndExecutes) {
  // Taken conditional far jump.
  Machine m1;
  std::string taken = "start:\n  mov #5, r4\n  cmp #5, r4\n";
  taken += FarProgram("  jeq target", 600).substr(7);  // strip "start:\n"
  auto out1 = RunAsm(&m1, taken, 100000);
  EXPECT_EQ(out1.result, StepResult::kStopped);
  EXPECT_EQ(m1.cpu().reg(Reg::kR10), 1) << "taken far jeq must reach the target";

  // Not-taken conditional far jump falls through into the filler.
  Machine m2;
  std::string not_taken = "start:\n  mov #5, r4\n  cmp #6, r4\n";
  not_taken += FarProgram("  jeq target", 600).substr(7);
  auto out2 = RunAsm(&m2, not_taken, 100000);
  EXPECT_EQ(out2.result, StepResult::kStopped);
  EXPECT_EQ(m2.cpu().reg(Reg::kR10), 1) << "falls through the nops to the same end";
}

TEST(RelaxationTest, BackwardFarJump) {
  // Backward distance beyond -512 words.
  std::string source = "start:\n  jmp skip\n";
  source += "back_target:\n  mov #7, r10\n  mov #4, &0x0710\n";
  source += "skip:\n";
  for (int i = 0; i < 600; ++i) {
    source += "  nop\n";
  }
  source += "  jmp back_target\n";
  Machine m;
  auto out = RunAsm(&m, source, 100000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(m.cpu().reg(Reg::kR10), 7);
}


// ---------------------------------------------------------------------------
// Intel HEX serialization
// ---------------------------------------------------------------------------

TEST(IntelHexTest, RoundTripPreservesChunks) {
  Image image;
  image.chunks[0x4400] = {0x01, 0x02, 0x03, 0x04, 0x05};
  std::vector<uint8_t> big(40);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 7);
  }
  image.chunks[0x7000] = big;
  std::string hex = WriteIntelHex(image);
  auto parsed = ParseIntelHex(hex);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->chunks.size(), 2u);
  EXPECT_EQ(parsed->chunks.at(0x4400), image.chunks.at(0x4400));
  EXPECT_EQ(parsed->chunks.at(0x7000), image.chunks.at(0x7000));
}

TEST(IntelHexTest, WellFormedRecords) {
  Image image;
  image.chunks[0x1000] = {0xAB, 0xCD};
  std::string hex = WriteIntelHex(image);
  EXPECT_EQ(hex, ":02100000ABCD76\n:00000001FF\n");
}

TEST(IntelHexTest, AdjacentRecordsCoalesce) {
  // Two records forming one contiguous run parse back as a single chunk.
  const char* hex =
      ":02100000ABCD76\n"
      ":021002001234A6\n"
      ":00000001FF\n";
  auto parsed = ParseIntelHex(hex);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->chunks.size(), 1u);
  EXPECT_EQ(parsed->chunks.at(0x1000),
            (std::vector<uint8_t>{0xAB, 0xCD, 0x12, 0x34}));
}

TEST(IntelHexTest, RejectsCorruptInput) {
  EXPECT_FALSE(ParseIntelHex(":02100000ABCD77\n:00000001FF\n").ok()) << "bad checksum";
  EXPECT_FALSE(ParseIntelHex("02100000ABCD76\n:00000001FF\n").ok()) << "missing colon";
  EXPECT_FALSE(ParseIntelHex(":02100000AB76\n:00000001FF\n").ok()) << "short record";
  EXPECT_FALSE(ParseIntelHex(":02100000ABCD76\n").ok()) << "missing EOF";
  EXPECT_FALSE(ParseIntelHex(":02100004ABCD72\n:00000001FF\n").ok())
      << "unsupported record type";
  EXPECT_FALSE(ParseIntelHex(":00000001FF\n:02100000ABCD76\n").ok()) << "data after EOF";
}

TEST(IntelHexTest, LinkedFirmwareSurvivesHexRoundTrip) {
  Linker linker;
  linker.AddObject(MustAssemble("start:\n  mov #0x1234, r4\n  jmp start\n"));
  auto image = linker.Link({{".text", 0x4400}});
  ASSERT_TRUE(image.ok());
  auto back = ParseIntelHex(WriteIntelHex(*image));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->chunks.at(0x4400), image->chunks.at(0x4400));
}


TEST(IntelHexTest, HexedFirmwareStillExecutes) {
  // Full circle: assemble+link a program, serialize to Intel HEX, parse it
  // back, load it into a *fresh* machine, and run it.
  Linker linker;
  linker.AddObject(MustAssemble(
      "start:\n"
      "  mov #0, r4\n"
      "  mov #10, r6\n"
      "loop:\n"
      "  add r6, r4\n"
      "  dec r6\n"
      "  jnz loop\n"
      "  mov r4, &0x1C00\n"
      "  mov #4, &0x0710\n"));
  auto image = linker.Link({{".text", 0x4400}});
  ASSERT_TRUE(image.ok());
  const uint16_t entry = image->SymbolOrZero("start");

  auto reloaded = ParseIntelHex(WriteIntelHex(*image));
  ASSERT_TRUE(reloaded.ok());
  Machine machine;
  LoadImage(*reloaded, &machine.bus());
  machine.bus().PokeWord(kResetVector, entry);
  machine.cpu().Reset();
  auto out = machine.Run(10'000);
  EXPECT_EQ(out.result, StepResult::kStopped);
  EXPECT_EQ(machine.bus().PeekWord(0x1C00), 55u) << "10+9+...+1";
}

}  // namespace
}  // namespace amulet
