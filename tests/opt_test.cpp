// Units for the reusable static-analysis layer (src/aft/cfg.h) and the
// phase-2.5 check optimizer (src/aft/opt.h): CFG shape, dominators, reaching
// definitions, natural loops, the IR verifier, and — via the real front end —
// which checks the optimizer does and (just as important) does not elide.
#include <gtest/gtest.h>

#include <string>

#include "src/aft/cfg.h"
#include "src/aft/checks.h"
#include "src/aft/opt.h"
#include "src/compiler/lower.h"
#include "src/lang/parser.h"
#include "src/lang/sema.h"

namespace amulet {
namespace {

// ---- hand-built IR helpers --------------------------------------------------

IrInst Const(int dst, int32_t imm) {
  IrInst i;
  i.op = IrOp::kConst;
  i.dst = dst;
  i.imm = imm;
  return i;
}

IrInst Copy(int dst, int a) {
  IrInst i;
  i.op = IrOp::kCopy;
  i.dst = dst;
  i.a = a;
  return i;
}

IrInst Add(int dst, int a, int b) {
  IrInst i;
  i.op = IrOp::kBin;
  i.bin = IrBin::kAdd;
  i.dst = dst;
  i.a = a;
  i.b = b;
  return i;
}

IrInst CmpLt(int dst, int a, int b) {
  IrInst i;
  i.op = IrOp::kCmp;
  i.rel = IrRel::kLtS;
  i.dst = dst;
  i.a = a;
  i.b = b;
  return i;
}

IrInst Label(int l) {
  IrInst i;
  i.op = IrOp::kLabel;
  i.imm = l;
  return i;
}

IrInst Jump(int l) {
  IrInst i;
  i.op = IrOp::kJump;
  i.imm = l;
  return i;
}

IrInst BranchZero(int a, int l) {
  IrInst i;
  i.op = IrOp::kBranchZero;
  i.a = a;
  i.imm = l;
  return i;
}

IrInst Ret() {
  IrInst i;
  i.op = IrOp::kRet;
  return i;
}

// if (c) t = 7; else t = 5; u = t; return
//   B0: {const c, br_zero}  B1: {const t5, jump}  B2: {label, const t7}
//   B3: {label, copy u<-t, ret}
IrFunction DiamondFn() {
  IrFunction fn;
  fn.name = "diamond";
  const int c = fn.NewVreg();
  const int t = fn.NewVreg();
  const int u = fn.NewVreg();
  const int l_else = fn.NewLabel();
  const int l_join = fn.NewLabel();
  fn.insts = {Const(c, 1),      BranchZero(c, l_else), Const(t, 5), Jump(l_join),
              Label(l_else),    Const(t, 7),           Label(l_join),
              Copy(u, t),       Ret()};
  return fn;
}

// i = 0; while (i < 10) i = i + 1; return
//   B0: {const i}  B1: {label, const lim, cmp, br_zero}  B2: {const one, add, jump}
//   B3: {label, ret}
IrFunction CountingLoopFn() {
  IrFunction fn;
  fn.name = "loop";
  const int i = fn.NewVreg();
  const int lim = fn.NewVreg();
  const int cond = fn.NewVreg();
  const int one = fn.NewVreg();
  const int l_head = fn.NewLabel();
  const int l_exit = fn.NewLabel();
  fn.insts = {Const(i, 0),
              Label(l_head),
              Const(lim, 10),
              CmpLt(cond, i, lim),
              BranchZero(cond, l_exit),
              Const(one, 1),
              Add(i, i, one),
              Jump(l_head),
              Label(l_exit),
              Ret()};
  return fn;
}

// ---- CFG --------------------------------------------------------------------

TEST(CfgTest, DiamondShape) {
  IrFunction fn = DiamondFn();
  auto cfg = BuildCfg(fn);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  ASSERT_EQ(cfg->blocks.size(), 4u);
  // Entry splits, join merges.
  EXPECT_EQ(cfg->blocks[0].succs.size(), 2u);
  EXPECT_EQ(cfg->blocks[3].preds.size(), 2u);
  // Every instruction maps into a block whose range covers it.
  for (int i = 0; i < static_cast<int>(fn.insts.size()); i++) {
    const int b = cfg->block_of_inst[i];
    ASSERT_GE(b, 0);
    EXPECT_GE(i, cfg->blocks[b].begin);
    EXPECT_LT(i, cfg->blocks[b].end);
  }
}

TEST(CfgTest, DiamondDominators) {
  auto cfg = BuildCfg(DiamondFn());
  ASSERT_TRUE(cfg.ok());
  // The entry dominates everything; neither arm dominates the join.
  for (int b = 0; b < 4; b++) {
    EXPECT_TRUE(cfg->Dominates(0, b)) << b;
  }
  EXPECT_FALSE(cfg->Dominates(1, 3));
  EXPECT_FALSE(cfg->Dominates(2, 3));
  EXPECT_EQ(cfg->idom[3], 0);
  EXPECT_EQ(cfg->rpo[0], 0);
}

TEST(CfgTest, BranchToMissingLabelFails) {
  IrFunction fn;
  fn.name = "bad";
  const int c = fn.NewVreg();
  fn.insts = {Const(c, 1), BranchZero(c, 9), Ret()};
  EXPECT_FALSE(BuildCfg(fn).ok());
}

TEST(ReachingDefsTest, JoinSeesBothArmDefs) {
  IrFunction fn = DiamondFn();
  auto cfg = BuildCfg(fn);
  ASSERT_TRUE(cfg.ok());
  ReachingDefs rd = ComputeReachingDefs(fn, *cfg);
  // u = t at inst 7: both arm defs of t (insts 2 and 5) reach.
  std::vector<int> defs = rd.DefsReaching(fn, *cfg, 7, /*vreg=*/1);
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(rd.def_sites[defs[0]], 2);
  EXPECT_EQ(rd.def_sites[defs[1]], 5);
  // The branch at inst 1 sees exactly the one def of c.
  defs = rd.DefsReaching(fn, *cfg, 1, /*vreg=*/0);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(rd.def_sites[defs[0]], 0);
}

TEST(ReachingDefsTest, LoopCarriedDefReachesHeader) {
  IrFunction fn = CountingLoopFn();
  auto cfg = BuildCfg(fn);
  ASSERT_TRUE(cfg.ok());
  ReachingDefs rd = ComputeReachingDefs(fn, *cfg);
  // At the header compare (inst 3), both the init (inst 0) and the
  // back-edge increment (inst 6) of i reach.
  std::vector<int> defs = rd.DefsReaching(fn, *cfg, 3, /*vreg=*/0);
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(rd.def_sites[defs[0]], 0);
  EXPECT_EQ(rd.def_sites[defs[1]], 6);
}

TEST(NaturalLoopTest, FindsCountingLoop) {
  auto cfg = BuildCfg(CountingLoopFn());
  ASSERT_TRUE(cfg.ok());
  std::vector<NaturalLoop> loops = FindNaturalLoops(*cfg);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1);
  ASSERT_EQ(loops[0].back_edges.size(), 1u);
  EXPECT_EQ(loops[0].back_edges[0], 2);
  EXPECT_TRUE(loops[0].Contains(1));
  EXPECT_TRUE(loops[0].Contains(2));
  EXPECT_FALSE(loops[0].Contains(0));
  EXPECT_TRUE(cfg->Dominates(loops[0].header, loops[0].back_edges[0]));
}

TEST(NaturalLoopTest, DiamondHasNoLoops) {
  auto cfg = BuildCfg(DiamondFn());
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(FindNaturalLoops(*cfg).empty());
}

// ---- IR verifier ------------------------------------------------------------

IrProgram WrapFn(IrFunction fn) {
  IrProgram p;
  p.app_name = "t";
  p.functions.push_back(std::move(fn));
  return p;
}

TEST(IrVerifyTest, AcceptsWellFormedIr) {
  EXPECT_TRUE(VerifyIr(WrapFn(CountingLoopFn()), /*allow_markers=*/false).ok());
  EXPECT_TRUE(VerifyIr(WrapFn(DiamondFn()), /*allow_markers=*/false).ok());
}

TEST(IrVerifyTest, CatchesOutOfRangeVreg) {
  IrFunction fn;
  fn.name = "bad";
  const int c = fn.NewVreg();
  fn.insts = {Const(c, 1), Copy(c, 7), Ret()};  // vreg 7 never allocated
  EXPECT_FALSE(VerifyIr(WrapFn(std::move(fn)), false).ok());
}

TEST(IrVerifyTest, CatchesUndefinedBranchTarget) {
  IrFunction fn;
  fn.name = "bad";
  const int c = fn.NewVreg();
  fn.insts = {Const(c, 1), BranchZero(c, 3), Ret()};
  EXPECT_FALSE(VerifyIr(WrapFn(std::move(fn)), false).ok());
}

TEST(IrVerifyTest, CatchesMissingRet) {
  IrFunction fn;
  fn.name = "bad";
  const int c = fn.NewVreg();
  fn.insts = {Const(c, 1)};
  EXPECT_FALSE(VerifyIr(WrapFn(std::move(fn)), false).ok());
}

TEST(IrVerifyTest, CatchesDuplicateLabel) {
  IrFunction fn;
  fn.name = "bad";
  fn.next_label = 1;
  fn.insts = {Label(0), Label(0), Ret()};
  EXPECT_FALSE(VerifyIr(WrapFn(std::move(fn)), false).ok());
}

TEST(IrVerifyTest, MarkersOnlyBeforePhaseTwo) {
  IrFunction fn;
  fn.name = "marked";
  const int a = fn.NewVreg();
  IrInst marker;
  marker.op = IrOp::kCheckMarker;
  marker.marker.kind = AccessKindIr::kPointer;
  marker.marker.addr_vr = a;
  fn.insts = {Const(a, 0x7000), marker, Ret()};
  IrProgram p = WrapFn(std::move(fn));
  EXPECT_TRUE(VerifyIr(p, /*allow_markers=*/true).ok());
  EXPECT_FALSE(VerifyIr(p, /*allow_markers=*/false).ok());
}

// ---- check optimizer (through the real front end) ---------------------------

// Lowers `source`, runs phase 2 under `model`, then the phase-2.5 optimizer.
Result<CheckOptStats> OptStatsFor(const std::string& source, MemoryModel model) {
  ASSIGN_OR_RETURN(std::unique_ptr<Program> program, Parse(source, "t"));
  FeatureAudit audit;
  RETURN_IF_ERROR(Analyze(program.get(), SemaOptions{}, &audit));
  ASSIGN_OR_RETURN(IrProgram ir, LowerProgram(program.get(), "t"));
  ASSIGN_OR_RETURN(CheckStats phase2, InsertChecks(&ir, model, BoundSymbolsFor("t")));
  (void)phase2;
  CheckOptOptions options;
  options.frame_safe = !audit.uses_recursion && !audit.has_indirect_calls;
  ASSIGN_OR_RETURN(CheckOptStats stats, OptimizeChecks(&ir, BoundSymbolsFor("t"), options));
  RETURN_IF_ERROR(VerifyIr(ir, /*allow_markers=*/false));
  return stats;
}

CheckOptStats MustOptStats(const std::string& source, MemoryModel model) {
  auto stats = OptStatsFor(source, model);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats.ok() ? *stats : CheckOptStats{};
}

TEST(CheckOptTest, GuardedLoopIndexElides) {
  // Threshold widening must stabilize i at exactly [0, 64] so the branch
  // refinement [0, 63] proves win[i] in bounds.
  const std::string source = R"(
int win[64];
int sum;
void main(void) {
  int s = 0;
  for (int i = 0; i < 64; i++) {
    s = s + win[i];
  }
  sum = s;
}
)";
  EXPECT_GE(MustOptStats(source, MemoryModel::kSoftwareOnly).elided_data_checks, 1);
  EXPECT_GE(MustOptStats(source, MemoryModel::kFeatureLimited).elided_index_checks, 1);
  EXPECT_GE(MustOptStats(source, MemoryModel::kMpu).elided_data_checks, 1);
}

TEST(CheckOptTest, MaskedIndexElides) {
  const std::string source = R"(
int sink[64];
void main(void) {
  for (int i = 0; i < 512; i++) {
    sink[i & 63] = i;
  }
}
)";
  EXPECT_GE(MustOptStats(source, MemoryModel::kSoftwareOnly).elided_data_checks, 1);
}

TEST(CheckOptTest, ClampedIndexElides) {
  const std::string source = R"(
int a[16];
int g;
void main(void) {
  int j = g;
  if (j < 0) { j = 0; }
  if (j > 15) { j = 15; }
  a[j] = 1;
}
)";
  EXPECT_GE(MustOptStats(source, MemoryModel::kSoftwareOnly).elided_data_checks, 1);
}

TEST(CheckOptTest, MemSafeCalleeDoesNotKillFacts) {
  // iabs writes nothing outside its frame, so the loop-counter range
  // survives the call and the win[i] check still elides.
  const std::string source = R"(
int win[64];
int sum;
int iabs(int v) {
  if (v < 0) { return -v; }
  return v;
}
void main(void) {
  int s = 0;
  for (int i = 0; i < 64; i++) {
    s = s + iabs(win[i]);
  }
  sum = s;
}
)";
  EXPECT_GE(MustOptStats(source, MemoryModel::kSoftwareOnly).elided_data_checks, 1);
}

TEST(CheckOptTest, GlobalWritingCalleeKillsFacts) {
  // Same shape, but the callee stores a global: a wild-but-in-bounds store
  // cannot be ruled out, so the analysis must drop its slot facts at the
  // call and keep the check.
  const std::string source = R"(
int win[64];
int scratch;
int sum;
int leak(int v) {
  scratch = v;
  return v;
}
void main(void) {
  int s = 0;
  int j = scratch;
  for (int i = 0; i < 64; i++) {
    s = s + leak(win[j]);
  }
  sum = s;
}
)";
  EXPECT_EQ(MustOptStats(source, MemoryModel::kSoftwareOnly).elided_data_checks, 0);
}

TEST(CheckOptTest, UnknownIndexKept) {
  const std::string source = R"(
int a[16];
int g;
void main(void) {
  a[g] = 1;
}
)";
  EXPECT_EQ(MustOptStats(source, MemoryModel::kSoftwareOnly).elided_data_checks, 0);
  EXPECT_EQ(MustOptStats(source, MemoryModel::kFeatureLimited).elided_index_checks, 0);
}

TEST(CheckOptTest, ProvablyOutOfBoundsKept) {
  // Trap-for-trap: the optimizer only deletes checks that provably PASS. A
  // known-bad index must keep its check so the fault still fires.
  const std::string source = R"(
int a[4];
void main(void) {
  int j = 9;
  a[j] = 1;
}
)";
  CheckOptStats stats = MustOptStats(source, MemoryModel::kSoftwareOnly);
  EXPECT_EQ(stats.elided_data_checks, 0);
  EXPECT_EQ(MustOptStats(source, MemoryModel::kFeatureLimited).elided_index_checks, 0);
}

TEST(CheckOptTest, LoopInvariantHeaderCheckHoists) {
  // The while-condition access a[j] has an unprovable but loop-invariant
  // index, sits in the loop header, and the loop is store/call-free (only
  // kStoreLocal), so the check moves to the preheader.
  const std::string source = R"(
int a[16];
int g;
void main(void) {
  int j = g;
  int s = 0;
  while (a[j] > s) {
    s = s + 1;
  }
  g = s;
}
)";
  EXPECT_GE(MustOptStats(source, MemoryModel::kSoftwareOnly).hoisted_checks, 1);
}

TEST(CheckOptTest, SignedModuloKept) {
  // wpos % 64 can be negative for negative wpos (C truncation semantics), so
  // the low-bound check must survive.
  const std::string source = R"(
int win[64];
int wpos;
void main(void) {
  win[wpos % 64] = 1;
  wpos = wpos + 1;
}
)";
  EXPECT_EQ(MustOptStats(source, MemoryModel::kSoftwareOnly).elided_data_checks, 0);
}

}  // namespace
}  // namespace amulet
