// 32-bit `long` support: arithmetic, comparisons, conversions, parameters,
// returns, aggregates, and model-differential checks. Results are read back
// as two 16-bit words from app globals.
#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "tests/compile_test_util.h"

namespace amulet {
namespace {

// Runs main() and returns the 32-bit global `name` (lo word first).
uint32_t RunAndGet32(const std::string& source, const std::string& name,
                     MemoryModel model = MemoryModel::kNoIsolation) {
  Machine m;
  auto out = CompileAndRun(&m, source, model, 20'000'000);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) {
    return 0xDEADBEEF;
  }
  EXPECT_EQ(out->run.result, StepResult::kStopped);
  EXPECT_EQ(out->run.stop_code, 4);
  uint16_t addr = out->image.SymbolOrZero("t_g_" + name);
  EXPECT_NE(addr, 0) << name;
  return static_cast<uint32_t>(m.bus().PeekWord(addr)) |
         (static_cast<uint32_t>(m.bus().PeekWord(addr + 2)) << 16);
}

TEST(LongTest, LiteralAndStore) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { r = 123456; }", "r"), 123456u);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { r = 0x89ABCDEF; }", "r"), 0x89ABCDEFu);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { r = -1; }", "r"), 0xFFFFFFFFu);
}

TEST(LongTest, GlobalInitializer) {
  EXPECT_EQ(RunAndGet32("long r = 1000000; void main(void) { }", "r"), 1000000u);
  EXPECT_EQ(RunAndGet32("unsigned long r = 0xFEDCBA98; void main(void) { }", "r"),
            0xFEDCBA98u);
}

TEST(LongTest, AddSubCarryChains) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 0xFFFF; r = a + 1; }", "r"),
            0x10000u);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 0x10000; r = a - 1; }", "r"),
            0xFFFFu);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 123456; long b = 654321; "
                        "r = a + b; }",
                        "r"),
            777777u);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 100000; long b = 300000; "
                        "r = a - b; }",
                        "r"),
            static_cast<uint32_t>(-200000));
}

TEST(LongTest, Multiply) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 1234; long b = 5678; "
                        "r = a * b; }",
                        "r"),
            1234u * 5678u);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = -300; long b = 7000; "
                        "r = a * b; }",
                        "r"),
            static_cast<uint32_t>(-2100000));
}

TEST(LongTest, Division) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 1000000; long b = 37; "
                        "r = a / b; }",
                        "r"),
            1000000u / 37);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 1000000; long b = 37; "
                        "r = a % b; }",
                        "r"),
            1000000u % 37);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = -1000000; long b = 37; "
                        "r = a / b; }",
                        "r"),
            static_cast<uint32_t>(-27027));
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = -1000000; long b = 37; "
                        "r = a % b; }",
                        "r"),
            static_cast<uint32_t>(-1));
  EXPECT_EQ(RunAndGet32("unsigned long r; void main(void) { unsigned long a = 0xF0000000; "
                        "unsigned long b = 16; r = a / b; }",
                        "r"),
            0xF0000000u / 16);
}

TEST(LongTest, Shifts) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 1; r = a << 20; }", "r"),
            1u << 20);
  EXPECT_EQ(RunAndGet32("unsigned long r; void main(void) { unsigned long a = 0x80000000; "
                        "r = a >> 31; }",
                        "r"),
            1u);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = -65536; r = a >> 8; }", "r"),
            static_cast<uint32_t>(-256));
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 3; int n = 10; r = a << n; }",
                        "r"),
            3u << 10);
}

TEST(LongTest, Bitwise) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 0x0F0F0F0F; "
                        "long b = 0x00FF00FF; r = (a & b) | 0x10000000; }",
                        "r"),
            ((0x0F0F0F0Fu & 0x00FF00FFu) | 0x10000000u));
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 0x12345678; r = ~a; }", "r"),
            ~0x12345678u);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 0xAAAA5555; "
                        "r = a ^ 0xFFFF0000; }",
                        "r"),
            0xAAAA5555u ^ 0xFFFF0000u);
}

TEST(LongTest, Negation) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 100000; r = -a; }", "r"),
            static_cast<uint32_t>(-100000));
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = -65536; r = -a; }", "r"),
            65536u);
}

TEST(LongTest, Comparisons) {
  const char* source =
      "int r; void main(void) { "
      "long big = 100000; long small = -100000; long same = 100000; "
      "r = 0; "
      "if (small < big) r += 1; "
      "if (big > small) r += 2; "
      "if (big == same) r += 4; "
      "if (small != big) r += 8; "
      "if (small <= big) r += 16; "
      "if (big >= same) r += 32; "
      "}";
  EXPECT_EQ(RunAndGet32(source, "r") & 0xFFFF, 63u);
}

TEST(LongTest, ComparisonHighVsLowWords) {
  // Cases where only low words or only high words differ.
  const char* source =
      "int r; void main(void) { "
      "long a = 0x00010000; long b = 0x0000FFFF; "  // highs differ
      "long c = 0x00020005; long d = 0x00020009; "  // lows differ
      "r = 0; "
      "if (a > b) r += 1; "
      "if (c < d) r += 2; "
      "if (!(a < b)) r += 4; "
      "}";
  EXPECT_EQ(RunAndGet32(source, "r") & 0xFFFF, 7u);
}

TEST(LongTest, UnsignedComparison) {
  const char* source =
      "int r; void main(void) { "
      "unsigned long big = 0xF0000000; unsigned long one = 1; "
      "r = 0; "
      "if (big > one) r += 1; "      // unsigned: huge
      "long sbig = (long)0xF0000000; "
      "if (sbig < (long)1) r += 2; "  // signed: negative
      "}";
  EXPECT_EQ(RunAndGet32(source, "r") & 0xFFFF, 3u);
}

TEST(LongTest, MixedWidthArithmetic) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { int small = 1000; long big = 100000; "
                        "r = big + small; }",
                        "r"),
            101000u);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { int neg = -5; long big = 100000; "
                        "r = big + neg; }",
                        "r"),
            99995u)
      << "signed 16-bit operand must sign-extend";
  EXPECT_EQ(RunAndGet32("long r; void main(void) { unsigned u = 0xFFFF; long big = 0; "
                        "r = big + u; }",
                        "r"),
            0xFFFFu)
      << "unsigned 16-bit operand must zero-extend";
}

TEST(LongTest, NarrowingAssignment) {
  EXPECT_EQ(RunAndGet32("int r; void main(void) { long a = 0x12345678; r = (int)a; }",
                        "r") &
                0xFFFF,
            0x5678u);
  EXPECT_EQ(RunAndGet32("int r; void main(void) { long a = 0x0001FFFF; r = a; }", "r") &
                0xFFFF,
            0xFFFFu)
      << "implicit narrowing keeps the low word";
}

TEST(LongTest, LongParametersAndReturn) {
  const char* source =
      "long r; "
      "long sum(long a, long c) { return a + c; } "       // 2+2 register words
      "long bump(long a, int by) { return a + by; } "     // 2+1
      "void main(void) { r = bump(sum(100000, 200000), 34); }";
  EXPECT_EQ(RunAndGet32(source, "r"), 300034u);
}

TEST(LongTest, TooManyParameterWordsRejected) {
  Machine m;
  auto out = CompileAndRun(&m,
                           "long f(long a, long b, int c) { return a + b + c; } "
                           "void main(void) { f(1, 2, 3); }");
  EXPECT_FALSE(out.ok()) << "2+2+1 register words exceed the budget";
}

TEST(LongTest, LongArraysAndLoops) {
  const char* source =
      "long acc[4]; long r; "
      "void main(void) { "
      "for (int i = 0; i < 4; i++) { acc[i] = 100000 + i; } "
      "r = 0; "
      "for (int i = 0; i < 4; i++) { r += acc[i]; } "
      "}";
  EXPECT_EQ(RunAndGet32(source, "r"), 400006u);
}

TEST(LongTest, LongInStructs) {
  const char* source =
      "struct Counter { int id; long total; }; "
      "struct Counter c; long r; "
      "void main(void) { c.id = 7; c.total = 1000000; c.total += 234; r = c.total; }";
  EXPECT_EQ(RunAndGet32(source, "r"), 1000234u);
}

TEST(LongTest, LongThroughPointers) {
  const char* source =
      "long value; long r; "
      "void bump(long* p, int by) { *p = *p + by; } "
      "void main(void) { value = 500000; bump(&value, 99); r = value; }";
  EXPECT_EQ(RunAndGet32(source, "r"), 500099u);
}

TEST(LongTest, IncDecAndCompound) {
  const char* source =
      "long r; void main(void) { long a = 0xFFFF; a++; a++; a--; "
      "a *= 2; a -= 1; r = a; }";
  EXPECT_EQ(RunAndGet32(source, "r"), ((0xFFFFu + 1) * 2) - 1);
}

TEST(LongTest, TernaryAndConditions) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 100000; "
                        "r = a > 50000 ? a * 2 : a; }",
                        "r"),
            200000u);
  EXPECT_EQ(RunAndGet32("int r; void main(void) { long a = 0x10000; "
                        "r = 0; if (a) r = 1; "     // low word is zero!
                        "long z = 0; if (!z) r += 2; }",
                        "r") &
                0xFFFF,
            3u)
      << "truth tests must look at both words";
}

TEST(LongTest, CyclesAccumulatorUseCase) {
  // The motivating use: accumulating quantities that overflow 16 bits
  // (the paper's own evaluation counts cycles in the billions).
  const char* source =
      "long total; long r; "
      "void main(void) { total = 0; "
      "for (int i = 0; i < 1000; i++) { total += 142; } "
      "r = total; }";
  EXPECT_EQ(RunAndGet32(source, "r"), 142000u);
}

TEST(LongTest, SizeofLong) {
  EXPECT_EQ(RunAndGet32("int r; void main(void) { r = sizeof(long) * 10 + "
                        "sizeof(unsigned long); }",
                        "r") &
                0xFFFF,
            44u);
}

TEST(LongTest, WideIndexRejected) {
  Machine m;
  auto out =
      CompileAndRun(&m, "int a[4]; void main(void) { long i = 1; a[i] = 2; }");
  EXPECT_FALSE(out.ok());
}

TEST(LongTest, WidePointerOffsetRejected) {
  Machine m;
  auto out = CompileAndRun(
      &m, "int a[4]; void main(void) { int* p = a; long off = 1; p = p + off; }");
  EXPECT_FALSE(out.ok());
}

// Edge-value comparison sweep: pairs around the signed/unsigned boundaries.
struct CmpCase {
  int32_t a;
  int32_t b;
};

class LongCompareEdges : public ::testing::TestWithParam<CmpCase> {};

TEST_P(LongCompareEdges, AllSixRelationsMatchHost) {
  const CmpCase& c = GetParam();
  const std::string source = StrFormat(
      "int r; void main(void) { "
      "long a = %d; long b = %d; r = 0; "
      "if (a < b) r += 1; if (a > b) r += 2; if (a == b) r += 4; "
      "if (a != b) r += 8; if (a <= b) r += 16; if (a >= b) r += 32; }",
      c.a, c.b);
  int expect = 0;
  if (c.a < c.b) expect += 1;
  if (c.a > c.b) expect += 2;
  if (c.a == c.b) expect += 4;
  if (c.a != c.b) expect += 8;
  if (c.a <= c.b) expect += 16;
  if (c.a >= c.b) expect += 32;
  EXPECT_EQ(static_cast<int>(RunAndGet32(source, "r") & 0xFFFF), expect)
      << c.a << " vs " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Edges, LongCompareEdges,
    ::testing::Values(CmpCase{0, 0}, CmpCase{-1, 0}, CmpCase{0x7FFFFFFF, -2147483647 - 1},
                      CmpCase{-2147483647 - 1, -2147483647 - 1},
                      CmpCase{0x10000, 0xFFFF},          // highs differ by one
                      CmpCase{0x7FFF0000, 0x7FFF0001},   // lows differ by one
                      CmpCase{-65536, 65536}, CmpCase{-65537, -65536},
                      CmpCase{0x7FFFFFFF, 0x7FFFFFFE}, CmpCase{1, -1}));

TEST(LongTest, DivisionEdgeValues) {
  // INT32_MIN magnitudes survive our magnitude-based signed division.
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = -2147483647 - 1; "
                        "r = a / 1; }",
                        "r"),
            0x80000000u);
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = -2147483647 - 1; "
                        "r = a / 2; }",
                        "r"),
            static_cast<uint32_t>(-1073741824));
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 0x7FFFFFFF; r = a / 3; }",
                        "r"),
            0x7FFFFFFFu / 3);
  // Division by zero is defined as zero by the runtime (no trap).
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 5; long z = 0; r = a / z; }",
                        "r"),
            0u);
}

TEST(LongTest, MultiplyWrapsAt32Bits) {
  EXPECT_EQ(RunAndGet32("long r; void main(void) { long a = 0x10000; r = a * a; }", "r"),
            0u);
  EXPECT_EQ(
      RunAndGet32("long r; void main(void) { long a = 100000; long b = 100000; r = a * b; }",
                  "r"),
      static_cast<uint32_t>(100000ll * 100000ll & 0xFFFFFFFF));
}

class LongDifferential : public ::testing::TestWithParam<MemoryModel> {};

TEST_P(LongDifferential, SameResultUnderIsolation) {
  const char* source =
      "long r; long acc[3]; "
      "void main(void) { "
      "acc[0] = 123456; acc[1] = -99999; acc[2] = 0x7FFF0000 / 3; "
      "long s = 0; "
      "for (int i = 0; i < 3; i++) { s += acc[i] / 7 + acc[i] % 7; } "
      "r = s * 3 - 1; }";
  const uint32_t baseline = RunAndGet32(source, "r", MemoryModel::kNoIsolation);
  EXPECT_EQ(RunAndGet32(source, "r", GetParam()), baseline) << MemoryModelName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Models, LongDifferential,
                         ::testing::Values(MemoryModel::kFeatureLimited, MemoryModel::kMpu,
                                           MemoryModel::kSoftwareOnly));

}  // namespace
}  // namespace amulet
