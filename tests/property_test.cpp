// Property tests (parameterized sweeps) on the system's core invariants:
//   * every out-of-region address faults under kSoftwareOnly and kMpu, and
//     the write never lands;
//   * every in-region address succeeds and never faults;
//   * MPU boundary arithmetic for arbitrary (16-byte-aligned) boundaries;
//   * isolation never changes program semantics (differential testing of a
//     seeded pseudo-random arithmetic kernel across all models).
#include <gtest/gtest.h>

#include "src/aft/aft.h"
#include "src/common/strings.h"
#include "src/mcu/machine.h"
#include "src/os/os.h"

namespace amulet {
namespace {

// One firmware with a "prober" app that writes through an arbitrary pointer
// the host plants in a global.
class ProbeRig {
 public:
  void Build(MemoryModel model) {
    const char* kProbe = R"(
int target;
int witness;
void on_init(void) { amulet_button_subscribe(); }
void on_button(int id) {
  if (id == 0) {
    int* p = (int*)target;
    *p = 0x5A5A;
    witness = 1;      /* reached only if the write was allowed */
  }
  if (id == 1) {
    int* p = (int*)target;
    witness = *p;     /* read probe */
  }
}
)";
    AftOptions options;
    options.model = model;
    auto fw = BuildFirmware({{"probe", kProbe}}, options);
    ASSERT_TRUE(fw.ok()) << fw.status().ToString();
    app = fw->apps[0];
    target_addr = fw->image.SymbolOrZero("probe_g_target");
    witness_addr = fw->image.SymbolOrZero("probe_g_witness");
    ASSERT_NE(target_addr, 0);
    OsOptions os_options;
    os_options.fault_policy = FaultPolicy::kLogOnly;
    os = std::make_unique<AmuletOs>(&machine, std::move(*fw), os_options);
    ASSERT_TRUE(os->Boot().ok());
  }

  // Returns true if the write to `addr` faulted (and verifies it never
  // landed when it should not have).
  bool ProbeWrite(uint16_t addr) {
    machine.bus().PokeWord(target_addr, addr);
    machine.bus().PokeWord(witness_addr, 0);
    const uint16_t before = machine.bus().PeekWord(addr & ~1);
    const size_t faults = os->faults().size();
    auto result = os->Deliver(0, EventType::kButton, 0);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    const bool faulted = os->faults().size() > faults;
    if (faulted) {
      EXPECT_EQ(machine.bus().PeekWord(addr & ~1), before)
          << "blocked write must not land at " << HexWord(addr);
      EXPECT_EQ(machine.bus().PeekWord(witness_addr), 0)
          << "handler must not continue past the fault";
    }
    return faulted;
  }

  Machine machine;
  std::unique_ptr<AmuletOs> os;
  AppImage app;
  uint16_t target_addr = 0;
  uint16_t witness_addr = 0;
};

class WildWriteSweep : public ::testing::TestWithParam<MemoryModel> {};

TEST_P(WildWriteSweep, EveryOutOfRegionWriteFaults) {
  ProbeRig rig;
  rig.Build(GetParam());
  // Sweep a broad set of out-of-region addresses: peripherals, SRAM, OS
  // code/data, the app's own code, above the app, vectors.
  std::vector<uint16_t> probes = {
      0x0002, 0x0700, 0x1800, 0x1C00, 0x2000, 0x23FE, 0x4400, 0x5000,
  };
  // App code region (execute-only): start, middle.
  probes.push_back(rig.app.code_lo);
  probes.push_back(static_cast<uint16_t>((rig.app.code_lo + rig.app.code_hi) / 2));
  // Above the app.
  probes.push_back(rig.app.data_hi);
  probes.push_back(static_cast<uint16_t>(rig.app.data_hi + 0x100));
  probes.push_back(0xF000);
  if (GetParam() == MemoryModel::kSoftwareOnly) {
    // The vector table (0xFF80+) lies outside MPU coverage — the paper's
    // complaint about this MPU. Only the software upper-bound check sees it;
    // the MPU model's residual hole is asserted separately below.
    probes.push_back(0xFF80);
  }
  for (uint16_t addr : probes) {
    EXPECT_TRUE(rig.ProbeWrite(addr))
        << HexWord(addr) << " should fault under " << MemoryModelName(GetParam());
  }
}

TEST(WildWriteHole, MpuModelCannotProtectTheVectorTable) {
  // Faithfully reproduced limitation (paper §2: the MPU "leaves certain
  // segments of memory, like hardware registers or RAM, unprotected" — and
  // lists the interrupt vectors). The app's lower-bound check passes
  // (0xFF80 > D_i) and the MPU does not cover the vector region, so the
  // write lands. SoftwareOnly's upper check catches the same write.
  ProbeRig mpu;
  mpu.Build(MemoryModel::kMpu);
  EXPECT_FALSE(mpu.ProbeWrite(0xFF80)) << "MPU model: vector write sails through";
  ProbeRig sw;
  sw.Build(MemoryModel::kSoftwareOnly);
  EXPECT_TRUE(sw.ProbeWrite(0xFF80)) << "SoftwareOnly: caught by the upper-bound check";
}

TEST_P(WildWriteSweep, EveryInRegionWriteSucceeds) {
  ProbeRig rig;
  rig.Build(GetParam());
  // In-region: across the whole data/stack segment at 16-byte strides
  // (skipping the two probe globals themselves and the live stack area the
  // dispatch is using).
  for (uint32_t addr = rig.app.stack_top; addr + 2 < rig.app.data_hi; addr += 16) {
    uint16_t a = static_cast<uint16_t>(addr);
    if (a == rig.target_addr || a == rig.witness_addr) {
      continue;
    }
    EXPECT_FALSE(rig.ProbeWrite(a))
        << HexWord(a) << " is inside the app region and must not fault";
    EXPECT_EQ(rig.machine.bus().PeekWord(a), 0x5A5A) << HexWord(a);
  }
}

TEST_P(WildWriteSweep, BoundaryPrecision) {
  // The exact fence posts: data_lo (first writable byte) succeeds,
  // data_lo - 2 faults; data_hi - 2 succeeds, data_hi faults.
  ProbeRig rig;
  rig.Build(GetParam());
  EXPECT_TRUE(rig.ProbeWrite(static_cast<uint16_t>(rig.app.data_lo - 2)));
  EXPECT_FALSE(rig.ProbeWrite(rig.app.data_lo));
  EXPECT_FALSE(rig.ProbeWrite(static_cast<uint16_t>(rig.app.data_hi - 2)));
  EXPECT_TRUE(rig.ProbeWrite(rig.app.data_hi));
}

INSTANTIATE_TEST_SUITE_P(IsolatingModels, WildWriteSweep,
                         ::testing::Values(MemoryModel::kSoftwareOnly, MemoryModel::kMpu));

// ---------------------------------------------------------------------------
// MPU boundary arithmetic sweep (device-level, no compiler involved)
// ---------------------------------------------------------------------------

class MpuBoundarySweep : public ::testing::TestWithParam<uint16_t> {};

TEST_P(MpuBoundarySweep, SegmentationFollowsBoundaries) {
  const uint16_t b1 = GetParam();
  const uint16_t b2 = static_cast<uint16_t>(b1 + 0x800);
  Machine m;
  Mpu& mpu = m.mpu();
  mpu.WriteWord(kMpuCtl0, 0xA501);
  mpu.WriteWord(kMpuSegB1, b1 >> 4);
  mpu.WriteWord(kMpuSegB2, b2 >> 4);
  // seg1 R, seg2 W, seg3 X — three distinct rights to tell segments apart.
  mpu.WriteWord(kMpuSam, static_cast<uint16_t>(kMpuSamRead) |
                             static_cast<uint16_t>(kMpuSamWrite << 4) |
                             static_cast<uint16_t>(kMpuSamExec << 8));
  auto rights = [&](uint16_t addr) {
    int r = 0;
    if (mpu.CheckAccess(addr, AccessKind::kRead)) r |= 4;
    if (mpu.CheckAccess(addr, AccessKind::kWrite)) r |= 2;
    if (mpu.CheckAccess(addr, AccessKind::kFetch)) r |= 1;
    return r;
  };
  EXPECT_EQ(rights(kFramStart), 4) << "segment 1: read-only";
  EXPECT_EQ(rights(static_cast<uint16_t>(b1 - 2)), 4);
  EXPECT_EQ(rights(b1), 2) << "segment 2 starts exactly at B1: write-only";
  EXPECT_EQ(rights(static_cast<uint16_t>(b2 - 2)), 2);
  EXPECT_EQ(rights(b2), 1) << "segment 3 starts exactly at B2: execute-only";
  EXPECT_EQ(rights(kFramEnd - 2), 1);
  // Uncovered regions: always allowed.
  EXPECT_EQ(rights(kSramStart), 7);
  EXPECT_EQ(rights(kVectorsStart), 7);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, MpuBoundarySweep,
                         ::testing::Values(0x5000, 0x6010, 0x8000, 0xA7F0, 0xE000));

TEST(MpuBoundaryEdgeTest, BoundaryAtFramStartEmptiesSegmentOne) {
  Machine m;
  Mpu& mpu = m.mpu();
  mpu.WriteWord(kMpuCtl0, 0xA501);
  mpu.WriteWord(kMpuSegB1, kFramStart >> 4);
  mpu.WriteWord(kMpuSegB2, 0x8000 >> 4);
  mpu.WriteWord(kMpuSam, static_cast<uint16_t>(kMpuSamWrite << 4));  // seg2 W only
  EXPECT_TRUE(mpu.CheckAccess(kFramStart, AccessKind::kWrite))
      << "FRAM start falls into segment 2 when B1 == FRAM start";
  EXPECT_FALSE(mpu.CheckAccess(0x8000, AccessKind::kWrite)) << "segment 3: no access";
}

// ---------------------------------------------------------------------------
// Differential semantics: a seeded arithmetic kernel must compute the same
// result under every memory model.
// ---------------------------------------------------------------------------

class DifferentialKernel : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialKernel, AllModelsAgree) {
  const int seed = GetParam();
  const std::string source = StrFormat(R"(
enum { N = 24 };
int buf[N];
int result;

void on_init(void) { amulet_button_subscribe(); }

void on_button(int id) {
  int seed = %d;
  for (int i = 0; i < N; i++) {
    seed = seed * 31 + 17;
    buf[i] = seed %% 997;
  }
  int acc = 0;
  for (int i = 0; i < N; i++) {
    int v = buf[i];
    if (v %% 3 == 0) {
      acc += v / 3;
    } else if (v %% 3 == 1) {
      acc -= v %% 7;
    } else {
      acc ^= v << 1;
    }
    acc &= 0x7FFF;
  }
  result = acc;
}
)",
                                       seed);
  int32_t expected = -1;
  for (MemoryModel model : kAllModels) {
    AftOptions options;
    options.model = model;
    auto fw = BuildFirmware({{"kernel", source}}, options);
    ASSERT_TRUE(fw.ok()) << fw.status().ToString();
    uint16_t result_addr = fw->image.SymbolOrZero("kernel_g_result");
    Machine machine;
    AmuletOs os(&machine, std::move(*fw), OsOptions{});
    ASSERT_TRUE(os.Boot().ok());
    ASSERT_TRUE(os.Deliver(0, EventType::kButton, 0).ok());
    EXPECT_TRUE(os.faults().empty()) << MemoryModelName(model);
    int32_t got = machine.bus().PeekWord(result_addr);
    if (expected < 0) {
      expected = got;
    }
    EXPECT_EQ(got, expected) << MemoryModelName(model) << " diverged (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialKernel, ::testing::Range(1, 11));

}  // namespace
}  // namespace amulet
